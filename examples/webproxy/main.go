// Command webproxy runs the paper's first application (§3.2): a web
// client and proxies coordinating through the logical tuple space. It
// starts a real HTTP origin, three Tiamat nodes (one client, two
// proxies), then demonstrates load balancing, proxy failover invisible
// to the client, and a disconnected client whose queued request is
// served on reconnection.
//
//	go run ./examples/webproxy
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"sync"
	"time"

	"tiamat/internal/apps/webproxy"
	"tiamat/internal/core"
	"tiamat/lease"
	"tiamat/transport/memnet"
	"tiamat/wire"
)

func mustInstance(netw *memnet.Network, addr wire.Addr) *core.Instance {
	ep, err := netw.Attach(addr)
	if err != nil {
		log.Fatal(err)
	}
	inst, err := core.New(core.Config{
		Endpoint:            ep,
		ContinuousDiscovery: true,
		RediscoverInterval:  50 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	return inst
}

func main() {
	// A real HTTP origin on localhost.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, "origin says hello for %s", r.URL.Path)
	})
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	defer srv.Close()
	originURL := "http://" + ln.Addr().String()

	netw := memnet.New()
	defer netw.Close()
	clientInst := mustInstance(netw, "client")
	defer clientInst.Close()
	proxy1Inst := mustInstance(netw, "proxy1")
	defer proxy1Inst.Close()
	proxy2Inst := mustInstance(netw, "proxy2")
	defer proxy2Inst.Close()
	netw.ConnectAll()

	client := webproxy.NewClient(clientInst)
	p1 := webproxy.NewProxy(proxy1Inst, webproxy.HTTPFetcher{})
	p1.Terms = lease.Terms{Duration: 500 * time.Millisecond, MaxRemotes: 8, MaxBytes: 1 << 20}
	p2 := webproxy.NewProxy(proxy2Inst, webproxy.HTTPFetcher{})
	p2.Terms = p1.Terms

	ctx := context.Background()

	// Load balancing: two proxies, concurrent requests, no client changes.
	p1.Start()
	p2.Start()
	var wg sync.WaitGroup
	results := make([]webproxy.Response, 6)
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := client.Get(ctx, fmt.Sprintf("%s/page-%d", originURL, i))
			if err != nil {
				log.Fatal(err)
			}
			results[i] = resp
		}(i)
	}
	wg.Wait()
	for i, resp := range results {
		fmt.Printf("GET page-%d -> %d %q\n", i, resp.Status, resp.Body)
	}
	fmt.Printf("proxy1 served %d, proxy2 served %d (anonymous load balancing)\n", p1.Served(), p2.Served())

	// Failover: kill proxy1; the client keeps going, unaware.
	p1.Stop()
	netw.Isolate("proxy1")
	resp, err := client.Get(ctx, originURL+"/after-failover")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after proxy1 failure: %d %q (client perturbed: no)\n", resp.Status, resp.Body)

	// Disconnection: the client leaves the network, queues a request in
	// its local space, and is served when visibility returns (§3.2).
	netw.Isolate("client")
	done := make(chan webproxy.Response, 1)
	go func() {
		r, err := client.Get(ctx, originURL+"/queued-offline")
		if err != nil {
			log.Fatal(err)
		}
		done <- r
	}()
	time.Sleep(200 * time.Millisecond)
	fmt.Println("client disconnected; request queued in its local space")
	netw.ConnectAll()
	r := <-done
	fmt.Printf("reconnected: queued request served -> %d %q\n", r.Status, r.Body)

	p2.Stop()
	fmt.Println("webproxy example complete")
}
