// Command quickstart demonstrates the core Tiamat model in two minutes:
// two instances on a simulated network form an opportunistic logical
// tuple space, exchange tuples anonymously, keep working while isolated,
// and have their storage reclaimed by lease expiry.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"tiamat"
	"tiamat/lease"
	"tiamat/transport/memnet"
	"tiamat/tuple"
)

func main() {
	// A simulated broadcast domain: visibility is explicit and mutable,
	// exactly like devices wandering in and out of radio range.
	net := memnet.New()
	defer net.Close()

	epA, err := net.Attach("alice")
	if err != nil {
		log.Fatal(err)
	}
	epB, err := net.Attach("bob")
	if err != nil {
		log.Fatal(err)
	}

	alice, err := tiamat.New(tiamat.Config{Endpoint: epA})
	if err != nil {
		log.Fatal(err)
	}
	defer alice.Close()
	bob, err := tiamat.New(tiamat.Config{Endpoint: epB})
	if err != nil {
		log.Fatal(err)
	}
	defer bob.Close()

	ctx := context.Background()
	greetingT := tuple.Tmpl(tuple.String("greeting"), tuple.FormalString())

	// 1. Isolation: each instance has a working local space (paper §2.2).
	if err := alice.Out(tuple.T(tuple.String("greeting"), tuple.String("hello from alice")), nil); err != nil {
		log.Fatal(err)
	}
	if _, ok, _ := bob.Rdp(ctx, greetingT, nil); ok {
		log.Fatal("bob should not see alice's tuple while isolated")
	}
	fmt.Println("isolated: bob sees nothing, alice's tuple is local")

	// 2. Visibility: the logical space becomes the union of both spaces.
	net.SetVisible("alice", "bob", true)
	res, ok, err := bob.Rdp(ctx, greetingT, nil)
	if err != nil || !ok {
		log.Fatalf("bob rdp after visibility: ok=%v err=%v", ok, err)
	}
	msg, _ := res.Tuple.StringAt(1)
	fmt.Printf("visible: bob read %q from %s\n", msg, res.From)

	// 3. Anonymous take: bob consumes the tuple; it is removed at alice.
	if _, ok, _ = bob.Inp(ctx, greetingT, nil); !ok {
		log.Fatal("take failed")
	}
	if _, ok, _ = alice.Rdp(ctx, greetingT, nil); ok {
		log.Fatal("tuple still at alice after take")
	}
	fmt.Println("take: tuple consumed exactly once across the logical space")

	// 4. Blocking with leases: a bounded wait returns nothing at expiry.
	start := time.Now()
	_, err = bob.In(ctx, tuple.Tmpl(tuple.String("never")), lease.Flexible(lease.Terms{
		Duration: 300 * time.Millisecond, MaxRemotes: 4,
	}))
	fmt.Printf("leases: blocking in gave up after %v with %v\n", time.Since(start).Round(time.Millisecond), err)

	// 5. Storage reclamation: an out lease expires and the tuple is gone.
	if err := alice.Out(tuple.T(tuple.String("ephemeral")), lease.Flexible(lease.Terms{
		Duration: 200 * time.Millisecond, MaxBytes: 64,
	})); err != nil {
		log.Fatal(err)
	}
	time.Sleep(300 * time.Millisecond)
	if _, ok, _ := alice.Rdp(ctx, tuple.Tmpl(tuple.String("ephemeral")), nil); ok {
		log.Fatal("expired tuple survived")
	}
	fmt.Println("reclaim: expired tuple removed from the space")

	// 6. Space handles (paper §2.4): read another space's info tuple and
	// address it directly.
	infos, err := alice.Spaces(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("discovery: alice sees %d spaces\n", len(infos))
	if err := alice.OutAt("bob", tuple.T(tuple.String("direct"), tuple.Int(1)), nil); err != nil {
		log.Fatal(err)
	}
	if _, ok := bob.LocalSpace().Rdp(tuple.Tmpl(tuple.String("direct"), tuple.FormalInt())); !ok {
		log.Fatal("direct out missing at bob")
	}
	fmt.Println("direct: tuple placed in bob's space explicitly")
	fmt.Println("quickstart complete")
}
