// Command fractal runs the paper's second application (§3.2): a
// Mandelbrot render farm coordinated through the tuple space with no
// load-balancing server. It renders once with a single worker, again
// with four, prints the speedup, renders an ASCII preview, and shows a
// worker failing mid-job without perturbing the master.
//
//	go run ./examples/fractal
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"tiamat/internal/apps/fractal"
	"tiamat/internal/core"
	"tiamat/lease"
	"tiamat/transport/memnet"
	"tiamat/wire"
)

func mustInstance(netw *memnet.Network, addr wire.Addr) *core.Instance {
	ep, err := netw.Attach(addr)
	if err != nil {
		log.Fatal(err)
	}
	inst, err := core.New(core.Config{
		Endpoint:            ep,
		ContinuousDiscovery: true,
		RediscoverInterval:  50 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	return inst
}

const shades = " .:-=+*#%@"

func preview(img [][]byte, width, height int) {
	stepY := len(img) / height
	if stepY == 0 {
		stepY = 1
	}
	for y := 0; y < len(img); y += stepY {
		row := img[y]
		stepX := len(row) / width
		if stepX == 0 {
			stepX = 1
		}
		line := make([]byte, 0, width)
		for x := 0; x < len(row); x += stepX {
			line = append(line, shades[int(row[x])*(len(shades)-1)/255])
		}
		fmt.Println(string(line))
	}
}

func main() {
	netw := memnet.New()
	defer netw.Close()
	masterInst := mustInstance(netw, "master")
	defer masterInst.Close()
	master := fractal.NewMaster(masterInst)
	master.Terms = lease.Terms{Duration: 5 * time.Second, MaxRemotes: 32, MaxBytes: 8 << 20}
	master.Retries = 5

	var workers []*fractal.Worker
	for i := 0; i < 4; i++ {
		inst := mustInstance(netw, wire.Addr(fmt.Sprintf("worker%d", i)))
		defer inst.Close()
		w := fractal.NewWorker(inst)
		w.Terms = lease.Terms{Duration: 500 * time.Millisecond, MaxRemotes: 32, MaxBytes: 8 << 20}
		// Model each worker as a modest remote device: a fixed per-row
		// latency in addition to the actual computation, so speedup is
		// visible even on a single-core host.
		w.Delay = 5 * time.Millisecond
		workers = append(workers, w)
	}
	netw.ConnectAll()

	p := fractal.Params{Width: 96, Height: 96, MaxIter: 1000}
	ctx := context.Background()

	// One worker.
	workers[0].Start()
	t0 := time.Now()
	if _, err := master.Render(ctx, p); err != nil {
		log.Fatal(err)
	}
	one := time.Since(t0)
	fmt.Printf("1 worker:  %v\n", one.Round(time.Millisecond))

	// Four workers — scaled up without touching the master.
	for _, w := range workers[1:] {
		w.Start()
	}
	t0 = time.Now()
	img, err := master.Render(ctx, p)
	if err != nil {
		log.Fatal(err)
	}
	four := time.Since(t0)
	fmt.Printf("4 workers: %v (speedup %.1fx)\n", four.Round(time.Millisecond), float64(one)/float64(four))
	for i, w := range workers {
		fmt.Printf("  worker%d computed %d rows\n", i, w.Computed())
	}

	// Fail one worker mid-job: the master's re-issue recovers the rows.
	done := make(chan error, 1)
	go func() {
		_, err := master.Render(ctx, p)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	workers[1].Stop()
	netw.Isolate("worker1")
	if err := <-done; err != nil {
		log.Fatal(err)
	}
	fmt.Println("render completed despite worker1 failing mid-job")

	fmt.Println()
	preview(img, 72, 24)
	for _, w := range workers {
		w.Stop()
	}
	fmt.Println("fractal example complete")
}
