// Command leases walks through Tiamat's fine-grained resource management
// (paper §2.5, §3.1.1): negotiation between lease requesters and the
// lease manager, clamped offers on a constrained device, budget
// exhaustion, storage reclamation, revocation as a last resort, and
// resource factories.
//
//	go run ./examples/leases
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"time"

	"tiamat"
	"tiamat/lease"
	"tiamat/transport/memnet"
	"tiamat/tuple"
)

func main() {
	netw := memnet.New()
	defer netw.Close()
	ep, err := netw.Attach("pda")
	if err != nil {
		log.Fatal(err)
	}
	// A PDA-class device: tiny lease capacities.
	inst, err := tiamat.New(tiamat.Config{
		Endpoint: ep,
		Leases: lease.Capacity{
			MaxActive:     8,
			MaxDuration:   2 * time.Second,
			MaxRemotes:    2,
			MaxBytes:      256,
			MaxTotalBytes: 1024,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer inst.Close()
	mgr := inst.LeaseManager()
	ctx := context.Background()

	// 1. Negotiation: the manager clamps an ambitious proposal.
	offer := mgr.Offer(lease.OpOut, lease.Terms{Duration: time.Hour, MaxRemotes: 100, MaxBytes: 1 << 20})
	fmt.Printf("proposed {1h, 100 remotes, 1MiB}; device offers %v\n", offer)

	// 2. A demanding requester refuses the clamped offer: the operation
	// fails, as the model requires (§3.1.1).
	err = inst.Out(tuple.T(tuple.String("big")), lease.Exactly(lease.Terms{Duration: time.Hour}))
	fmt.Printf("strict requester: out failed with %v\n", err)

	// 3. A flexible requester takes what it can get.
	if err := inst.Out(tuple.T(tuple.String("note"), tuple.String("pick me up")),
		lease.Flexible(lease.Terms{Duration: time.Second, MaxBytes: 64})); err != nil {
		log.Fatal(err)
	}
	fmt.Println("flexible requester: tuple stored under a 1s lease")

	// 4. Byte budgets: a tuple larger than the offered budget is refused.
	huge := tuple.T(tuple.Bytes(make([]byte, 2048)))
	err = inst.Out(huge, lease.Flexible(lease.Terms{Duration: time.Second, MaxBytes: 2048}))
	fmt.Printf("oversized tuple: %v\n", err)

	// 5. Expiry reclaims storage.
	time.Sleep(1100 * time.Millisecond)
	if _, ok, _ := inst.Rdp(ctx, tuple.Tmpl(tuple.String("note"), tuple.FormalString()), nil); ok {
		log.Fatal("expired note survived")
	}
	fmt.Println("after 1.1s: note reclaimed by lease expiry")

	// 6. Blocking reads are leased too: the in returns nothing at expiry.
	start := time.Now()
	_, err = inst.In(ctx, tuple.Tmpl(tuple.String("never")), lease.Flexible(lease.Terms{Duration: 400 * time.Millisecond}))
	if !errors.Is(err, tiamat.ErrNoMatch) {
		log.Fatalf("unexpected: %v", err)
	}
	fmt.Printf("blocking in returned nothing after %v (ErrNoMatch)\n", time.Since(start).Round(10*time.Millisecond))

	// 7. Revocation as a last resort (§2.5): under pressure the manager
	// may reclaim leases; the instance drops the covered tuples.
	for i := 0; i < 3; i++ {
		if err := inst.Out(tuple.T(tuple.String("bulk"), tuple.Int(int64(i))),
			lease.Flexible(lease.Terms{Duration: 2 * time.Second, MaxBytes: 64})); err != nil {
			log.Fatal(err)
		}
	}
	revoked := mgr.Revoke(2)
	fmt.Printf("pressure: revoked %d leases; stats now %+v\n", revoked, mgr.Stats())

	// 8. Resource factories (§3.1.1): managed resources are allocated
	// through the lease manager.
	mgr.RegisterResource(lease.ResSockets, 2)
	rel1, _ := mgr.Acquire(lease.ResSockets, 1)
	rel2, _ := mgr.Acquire(lease.ResSockets, 1)
	if _, err := mgr.Acquire(lease.ResSockets, 1); err != nil {
		fmt.Printf("socket factory exhausted: %v\n", err)
	}
	rel1()
	rel2()
	used, capacity := mgr.InUse(lease.ResSockets)
	fmt.Printf("sockets after release: %d/%d in use\n", used, capacity)
	fmt.Println("leases example complete")
}
