package monitor

import (
	"testing"
	"testing/quick"
	"time"

	"tiamat/wire"
)

func addrs(names ...string) []wire.Addr {
	out := make([]wire.Addr, len(names))
	for i, n := range names {
		out[i] = wire.Addr(n)
	}
	return out
}

func TestStabilityStableSet(t *testing.T) {
	m := New(8, 8)
	for i := 0; i < 8; i++ {
		m.ObserveVisible(time.Time{}, addrs("a", "b", "c"))
	}
	if got := m.Stability(); got != 1.0 {
		t.Fatalf("Stability = %g, want 1.0", got)
	}
	if m.Churn() != 0 {
		t.Fatalf("Churn = %g", m.Churn())
	}
}

func TestStabilityTotalChurn(t *testing.T) {
	m := New(8, 8)
	m.ObserveVisible(time.Time{}, addrs("a", "b"))
	m.ObserveVisible(time.Time{}, addrs("c", "d"))
	if got := m.Stability(); got != 0 {
		t.Fatalf("Stability = %g, want 0", got)
	}
}

func TestGoodbyeNotCountedAsChurn(t *testing.T) {
	// b leaves gracefully: the shrink from {a,b,c} to {a,c} is planned
	// and must not depress stability.
	m := New(8, 8)
	m.ObserveVisible(time.Time{}, addrs("a", "b", "c"))
	m.ObserveGoodbye("b")
	m.ObserveVisible(time.Time{}, addrs("a", "c"))
	if got := m.Stability(); got != 1.0 {
		t.Fatalf("Stability = %g after announced departure, want 1.0", got)
	}

	// The same shrink without a goodbye is churn.
	m2 := New(8, 8)
	m2.ObserveVisible(time.Time{}, addrs("a", "b", "c"))
	m2.ObserveVisible(time.Time{}, addrs("a", "c"))
	if got := m2.Stability(); got >= 1.0 {
		t.Fatalf("Stability = %g after silent departure, want < 1.0", got)
	}
}

func TestGoodbyeRejoinRestoresChurnAccounting(t *testing.T) {
	m := New(8, 8)
	m.ObserveVisible(time.Time{}, addrs("a", "b"))
	m.ObserveGoodbye("b")
	m.ObserveVisible(time.Time{}, addrs("a"))
	// b rejoins: it is live again…
	m.ObserveVisible(time.Time{}, addrs("a", "b"))
	if got := m.Stability(); got != 1.0 {
		t.Fatalf("Stability = %g across goodbye+rejoin, want 1.0", got)
	}
	// …so a later silent disappearance counts as churn.
	m.ObserveVisible(time.Time{}, addrs("a"))
	if got := m.Stability(); got >= 1.0 {
		t.Fatalf("Stability = %g after silent re-departure, want < 1.0", got)
	}
}

func TestStabilityPartialOverlap(t *testing.T) {
	m := New(8, 8)
	m.ObserveVisible(time.Time{}, addrs("a", "b"))
	m.ObserveVisible(time.Time{}, addrs("b", "c"))
	// Jaccard({a,b},{b,c}) = 1/3.
	if got := m.Stability(); got < 0.33 || got > 0.34 {
		t.Fatalf("Stability = %g, want ~1/3", got)
	}
}

func TestStabilityDefaultsWithFewSamples(t *testing.T) {
	m := New(8, 8)
	if m.Stability() != 1.0 {
		t.Fatal("no samples should read stable")
	}
	m.ObserveVisible(time.Time{}, addrs("a"))
	if m.Stability() != 1.0 {
		t.Fatal("single sample should read stable")
	}
}

func TestStabilityEmptySets(t *testing.T) {
	m := New(8, 8)
	m.ObserveVisible(time.Time{}, nil)
	m.ObserveVisible(time.Time{}, nil)
	if m.Stability() != 1.0 {
		t.Fatal("two empty sets are identical")
	}
}

func TestWindowSlides(t *testing.T) {
	m := New(2, 8)
	m.ObserveVisible(time.Time{}, addrs("a"))
	m.ObserveVisible(time.Time{}, addrs("z")) // churn vs previous
	m.ObserveVisible(time.Time{}, addrs("z"))
	m.ObserveVisible(time.Time{}, addrs("z"))
	// Window of 2 retains only the stable tail.
	if got := m.Stability(); got != 1.0 {
		t.Fatalf("Stability = %g after window slid", got)
	}
}

func TestPersistenceRanking(t *testing.T) {
	m := New(4, 8)
	m.ObserveVisible(time.Time{}, addrs("stable", "flaky"))
	m.ObserveVisible(time.Time{}, addrs("stable"))
	m.ObserveVisible(time.Time{}, addrs("stable"))
	m.ObserveVisible(time.Time{}, addrs("stable", "flaky"))
	ps := m.Persistence()
	if len(ps) != 2 {
		t.Fatalf("persistence = %v", ps)
	}
	if ps[0].Addr != "stable" || ps[0].Score != 1.0 {
		t.Fatalf("top = %+v", ps[0])
	}
	if ps[1].Addr != "flaky" || ps[1].Score != 0.5 {
		t.Fatalf("second = %+v", ps[1])
	}
	if New(4, 4).Persistence() != nil {
		t.Fatal("empty monitor should return nil persistence")
	}
}

func TestOpOutcomes(t *testing.T) {
	m := New(4, 4)
	if m.SuccessRate() != 1.0 || m.MeanLatency() != 0 {
		t.Fatal("empty outcome defaults wrong")
	}
	m.ObserveOp(true, 10*time.Millisecond)
	m.ObserveOp(false, 30*time.Millisecond)
	if got := m.SuccessRate(); got != 0.5 {
		t.Fatalf("SuccessRate = %g", got)
	}
	if got := m.MeanLatency(); got != 20*time.Millisecond {
		t.Fatalf("MeanLatency = %v", got)
	}
	// Window slides: four successes push out the failure.
	for i := 0; i < 4; i++ {
		m.ObserveOp(true, time.Millisecond)
	}
	if got := m.SuccessRate(); got != 1.0 {
		t.Fatalf("SuccessRate after slide = %g", got)
	}
}

func TestBusyRateWindow(t *testing.T) {
	m := New(4, 4)
	if got := m.BusyRate(); got != 0.0 {
		t.Fatalf("empty BusyRate = %g, want 0", got)
	}
	m.ObserveAdmission(true)
	m.ObserveAdmission(false)
	if got := m.BusyRate(); got != 0.5 {
		t.Fatalf("BusyRate = %g, want 0.5", got)
	}
	// Window slides: four admissions push out the refusal.
	for i := 0; i < 4; i++ {
		m.ObserveAdmission(false)
	}
	if got := m.BusyRate(); got != 0.0 {
		t.Fatalf("BusyRate after slide = %g, want 0", got)
	}
}

func TestAdaptiveIntervalBacksOffWhenStable(t *testing.T) {
	a := NewAdaptiveInterval(100*time.Millisecond, time.Second)
	if a.Current() != 100*time.Millisecond {
		t.Fatal("start != min")
	}
	a.Update(1.0)
	a.Update(1.0)
	if got := a.Current(); got != 400*time.Millisecond {
		t.Fatalf("interval = %v after two stable updates", got)
	}
	for i := 0; i < 10; i++ {
		a.Update(1.0)
	}
	if got := a.Current(); got != time.Second {
		t.Fatalf("interval = %v, want capped at max", got)
	}
}

func TestAdaptiveIntervalSnapsBackUnderChurn(t *testing.T) {
	a := NewAdaptiveInterval(100*time.Millisecond, time.Second)
	for i := 0; i < 5; i++ {
		a.Update(1.0)
	}
	if got := a.Update(0.1); got != 100*time.Millisecond {
		t.Fatalf("interval = %v under churn, want min", got)
	}
	// Mid-band stability leaves the interval unchanged.
	cur := a.Current()
	if got := a.Update(0.7); got != cur {
		t.Fatalf("mid-band update changed interval: %v", got)
	}
}

func TestAdaptiveIntervalDefaults(t *testing.T) {
	a := NewAdaptiveInterval(0, 0)
	if a.Current() <= 0 {
		t.Fatal("defaulted interval must be positive")
	}
}

func TestPropStabilityBounded(t *testing.T) {
	prop := func(samples [][]uint8) bool {
		m := New(8, 8)
		for _, s := range samples {
			var visible []wire.Addr
			for _, v := range s {
				visible = append(visible, wire.Addr('a'+rune(v%8)))
			}
			m.ObserveVisible(time.Time{}, visible)
			st := m.Stability()
			if st < 0 || st > 1 {
				return false
			}
			if c := m.Churn(); c < 0 || c > 1 {
				return false
			}
		}
		for _, p := range m.Persistence() {
			if p.Score <= 0 || p.Score > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMobilityCountersAccumulate(t *testing.T) {
	m := New(0, 0)
	if m.Mobility() != (MobilityCounters{}) {
		t.Fatalf("fresh monitor has counters: %+v", m.Mobility())
	}
	m.ObserveRearm()
	m.ObserveRearm()
	m.ObserveOrphanSweep(3, 1)
	m.ObserveOrphanSweep(0, 2)
	m.ObserveVisibilityEvent(true)
	m.ObserveVisibilityEvent(true)
	m.ObserveVisibilityEvent(false)
	got := m.Mobility()
	want := MobilityCounters{Rearms: 2, OrphanWaits: 3, OrphanHolds: 3, VisJoins: 2, VisLeaves: 1}
	if got != want {
		t.Fatalf("mobility = %+v, want %+v", got, want)
	}
}

func TestGrayCountersAccumulate(t *testing.T) {
	m := New(0, 0)
	if m.Gray() != (GrayCounters{}) {
		t.Fatalf("fresh monitor has counters: %+v", m.Gray())
	}
	m.ObserveHedge(false)
	m.ObserveHedge(true)
	m.ObserveHedge(true)
	m.ObserveSlowStrike()
	m.ObserveSlowStrike()
	m.ObserveDemotion()
	m.ObserveDegradedAnnounce()
	m.ObserveDegradedAnnounce()
	m.ObserveDegradedAnnounce()
	got := m.Gray()
	want := GrayCounters{Hedges: 3, HedgeWins: 2, SlowStrikes: 2, Demotions: 1, DegradedSeen: 3}
	if got != want {
		t.Fatalf("gray = %+v, want %+v", got, want)
	}
}

func TestCapsCountersAccumulate(t *testing.T) {
	m := New(0, 0)
	if m.Caps() != (CapsCounters{}) {
		t.Fatalf("fresh monitor has counters: %+v", m.Caps())
	}
	m.ObserveCapsLearned()
	m.ObserveCapsLearned()
	m.ObserveGatedSend()
	m.ObserveGatedSend()
	m.ObserveGatedSend()
	m.SetBaselinePeers(4)
	m.SetBaselinePeers(2) // gauge: latest wins
	got := m.Caps()
	want := CapsCounters{Learned: 2, GatedSends: 3, BaselinePeers: 2}
	if got != want {
		t.Fatalf("caps = %+v, want %+v", got, want)
	}
}
