// Package monitor implements the run-time-support monitoring and
// adaptation the paper identifies as challenges §5.2–§5.3 and names as
// Tiamat's future work (§6): observing the set of visible instances,
// quantifying its stability, tracking operation outcomes, and adapting
// policy — here, the discovery interval — to the observed churn.
package monitor

import (
	"sort"
	"sync"
	"time"

	"tiamat/wire"
)

// Sample is one observation of the visible set.
type Sample struct {
	At      time.Time
	Visible map[wire.Addr]bool
	// Departed holds the nodes that had announced a graceful goodbye as
	// of this sample and have not been seen since: their absence is
	// planned shrinkage, not churn.
	Departed map[wire.Addr]bool
}

// Monitor keeps a sliding window of visibility samples and operation
// outcomes. The zero value is not usable; call New.
type Monitor struct {
	mu      sync.Mutex
	window  int
	samples []Sample
	// departed accumulates goodbye announcements; an address is cleared
	// the moment it is observed visible again (it rejoined, so a later
	// disappearance counts as churn once more).
	departed map[wire.Addr]bool

	opWindow  int
	outcomes  []bool // success ring
	latencies []time.Duration
	refusals  []bool // busy-refusal ring (admission outcomes)

	mob  MobilityCounters
	gray GrayCounters
	caps CapsCounters
}

// MobilityCounters accumulates the mobility-path activity the monitor has
// been told about (DESIGN.md §10): blocking operations re-armed toward
// newly visible peers, orphaned serve-side state swept after a requester
// vanished, and raw visibility churn events from the responder list.
// Unlike the windowed rates above these are monotonic totals — the
// interesting signal is "how often does the world change", which a
// sliding window would erase between samples.
type MobilityCounters struct {
	Rearms      uint64 // in-flight blocking ops re-armed on join events
	OrphanWaits uint64 // served waits swept for vanished requesters
	OrphanHolds uint64 // held tuples reinstated for vanished requesters
	VisJoins    uint64 // peers that became visible
	VisLeaves   uint64 // peers that dropped out of visibility
}

// GrayCounters accumulates gray-failure-path activity (DESIGN.md §11):
// hedged contacts racing a slow first responder, latency-outlier
// demotions, and peers that announced themselves degraded. Like the
// mobility counters these are monotonic totals — a gray failure is
// interesting precisely because it persists, so the lifetime count is
// the signal.
type GrayCounters struct {
	Hedges       uint64 // hedged contacts fired by the requester path
	HedgeWins    uint64 // operations settled by a hedged contact
	SlowStrikes  uint64 // measurable replies that needed retransmissions
	Demotions    uint64 // peers demoted by the latency outlier detector
	DegradedSeen uint64 // announce frames carrying a degraded self-report
}

// CapsCounters accumulates capability-negotiation activity (DESIGN.md
// §14). Learned and GatedSends are monotonic totals; BaselinePeers is a
// gauge — the current count of cached responders known to run a
// pre-capability build, the number an operator watches go to zero as a
// rolling upgrade completes.
type CapsCounters struct {
	Learned       uint64 // announces that taught us a peer's capability set
	GatedSends    uint64 // frames stripped or withheld toward baseline peers
	BaselinePeers int    // cached responders on known pre-capability builds
}

// New returns a Monitor with the given sliding-window lengths (samples
// for visibility, ops for outcomes). Non-positive values default to 16
// and 128.
func New(visWindow, opWindow int) *Monitor {
	if visWindow <= 0 {
		visWindow = 16
	}
	if opWindow <= 0 {
		opWindow = 128
	}
	return &Monitor{window: visWindow, opWindow: opWindow}
}

// ObserveVisible records the currently visible set.
func (m *Monitor) ObserveVisible(at time.Time, visible []wire.Addr) {
	set := make(map[wire.Addr]bool, len(visible))
	for _, a := range visible {
		set[a] = true
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	dep := make(map[wire.Addr]bool, len(m.departed))
	for a := range m.departed {
		if set[a] {
			delete(m.departed, a) // it came back: live again
			continue
		}
		dep[a] = true
	}
	m.samples = append(m.samples, Sample{At: at, Visible: set, Departed: dep})
	if len(m.samples) > m.window {
		m.samples = m.samples[len(m.samples)-m.window:]
	}
}

// ObserveGoodbye records a graceful departure announcement (wire
// TGoodbye): the node said it was leaving, so its subsequent absence
// from visibility samples is expected and Stability does not count it as
// churn. If the node is observed visible again later it is treated as
// live and a future unannounced disappearance counts normally.
func (m *Monitor) ObserveGoodbye(addr wire.Addr) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.departed == nil {
		m.departed = make(map[wire.Addr]bool)
	}
	m.departed[addr] = true
}

// Stability returns the mean Jaccard similarity between consecutive
// visibility samples in the window: 1.0 means the visible set never
// changed, 0.0 means it was replaced wholesale at every sample. Nodes
// that announced a graceful goodbye are excluded from the comparison —
// planned departures do not destabilise the environment the way
// unannounced disappearances do. With fewer than two samples it returns
// 1.0 (no evidence of change).
func (m *Monitor) Stability() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.samples) < 2 {
		return 1.0
	}
	var sum float64
	for i := 1; i < len(m.samples); i++ {
		// A node counts as departed for this pair if it was marked in
		// either sample: both the goodbye-shrink and the planned
		// reappearance of the same node are lifecycle, not churn.
		skip := m.samples[i].Departed
		if prev := m.samples[i-1].Departed; len(prev) > 0 {
			skip = make(map[wire.Addr]bool, len(skip)+len(prev))
			for a := range m.samples[i].Departed {
				skip[a] = true
			}
			for a := range prev {
				skip[a] = true
			}
		}
		sum += jaccardExcluding(m.samples[i-1].Visible, m.samples[i].Visible, skip)
	}
	return sum / float64(len(m.samples)-1)
}

// Churn is 1 - Stability.
func (m *Monitor) Churn() float64 { return 1 - m.Stability() }

func jaccard(a, b map[wire.Addr]bool) float64 { return jaccardExcluding(a, b, nil) }

// jaccardExcluding is the Jaccard similarity of a and b with the skip
// set removed from both sides.
func jaccardExcluding(a, b, skip map[wire.Addr]bool) float64 {
	inter, union := 0, 0
	for k := range a {
		if skip[k] {
			continue
		}
		union++
		if b[k] {
			inter++
		}
	}
	for k := range b {
		if skip[k] || a[k] {
			continue
		}
		union++
	}
	if union == 0 {
		return 1.0
	}
	return float64(inter) / float64(union)
}

// Persistence reports, for each address seen in the window, the fraction
// of samples it appeared in — the "social characteristics" §6 proposes to
// exploit. Results are sorted by decreasing persistence, ties by address.
func (m *Monitor) Persistence() []AddrScore {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.samples) == 0 {
		return nil
	}
	counts := make(map[wire.Addr]int)
	for _, s := range m.samples {
		for a := range s.Visible {
			counts[a]++
		}
	}
	out := make([]AddrScore, 0, len(counts))
	for a, c := range counts {
		out = append(out, AddrScore{Addr: a, Score: float64(c) / float64(len(m.samples))})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score == out[j].Score {
			return out[i].Addr < out[j].Addr
		}
		return out[i].Score > out[j].Score
	})
	return out
}

// AddrScore pairs an address with a persistence score in [0,1].
type AddrScore struct {
	Addr  wire.Addr
	Score float64
}

// ObserveRearm records that an in-flight blocking operation was re-armed
// toward a peer that became visible mid-wait.
func (m *Monitor) ObserveRearm() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.mob.Rearms++
}

// ObserveOrphanSweep records one orphan-sweep reap: waits is how many
// served waits were stopped and holds how many held tuples were
// reinstated because their requester stayed unreachable past the
// suspicion window.
func (m *Monitor) ObserveOrphanSweep(waits, holds uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.mob.OrphanWaits += waits
	m.mob.OrphanHolds += holds
}

// ObserveVisibilityEvent records one raw visibility transition: join is
// true when a peer became visible, false when it dropped out.
func (m *Monitor) ObserveVisibilityEvent(join bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if join {
		m.mob.VisJoins++
	} else {
		m.mob.VisLeaves++
	}
}

// Mobility returns the accumulated mobility counters.
func (m *Monitor) Mobility() MobilityCounters {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.mob
}

// ObserveHedge records one hedged contact; win says whether that hedge
// (not the original contact) ended up settling the operation.
func (m *Monitor) ObserveHedge(win bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.gray.Hedges++
	if win {
		m.gray.HedgeWins++
	}
}

// ObserveSlowStrike records a measurable reply that arrived only after
// retransmissions — the Karn's-rule latency strike feeding demotion.
func (m *Monitor) ObserveSlowStrike() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.gray.SlowStrikes++
}

// ObserveDemotion records a peer demoted by the latency outlier
// detector: still served, no longer first contact.
func (m *Monitor) ObserveDemotion() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.gray.Demotions++
}

// ObserveDegradedAnnounce records an announce frame in which a peer
// self-reported degradation (fsync stalls or serve-queue delay).
func (m *Monitor) ObserveDegradedAnnounce() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.gray.DegradedSeen++
}

// Gray returns the accumulated gray-failure counters.
func (m *Monitor) Gray() GrayCounters {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.gray
}

// ObserveCapsLearned records an announce that taught us a peer's
// capability set (including re-learning on upgrade or rollback).
func (m *Monitor) ObserveCapsLearned() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.caps.Learned++
}

// ObserveGatedSend records a frame stripped of versioned fields or
// withheld entirely because its destination runs a baseline build.
func (m *Monitor) ObserveGatedSend() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.caps.GatedSends++
}

// SetBaselinePeers updates the known-baseline-peer gauge.
func (m *Monitor) SetBaselinePeers(n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.caps.BaselinePeers = n
}

// Caps returns the accumulated capability-negotiation counters.
func (m *Monitor) Caps() CapsCounters {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.caps
}

// ObserveOp records one operation outcome (challenge §5.4: modelling
// application behaviour by watching what operations do).
func (m *Monitor) ObserveOp(success bool, latency time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.outcomes = append(m.outcomes, success)
	m.latencies = append(m.latencies, latency)
	if len(m.outcomes) > m.opWindow {
		m.outcomes = m.outcomes[len(m.outcomes)-m.opWindow:]
		m.latencies = m.latencies[len(m.latencies)-m.opWindow:]
	}
}

// SuccessRate returns the windowed operation success fraction (1.0 with
// no observations).
func (m *Monitor) SuccessRate() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.outcomes) == 0 {
		return 1.0
	}
	ok := 0
	for _, s := range m.outcomes {
		if s {
			ok++
		}
	}
	return float64(ok) / float64(len(m.outcomes))
}

// ObserveAdmission records whether a remote responder refused one
// request with an explicit busy reply (the overload governor's shed
// signal, DESIGN.md §9). Tracked separately from ObserveOp: a busy
// refusal is the environment saying "elsewhere, please", not a failure
// of the operation itself, and the windowed rate is the requester's view
// of how overloaded its current responders are.
func (m *Monitor) ObserveAdmission(refused bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.refusals = append(m.refusals, refused)
	if len(m.refusals) > m.opWindow {
		m.refusals = m.refusals[len(m.refusals)-m.opWindow:]
	}
}

// BusyRate returns the windowed fraction of requests refused busy (0.0
// with no observations): a rising rate says the visible set is
// saturated and the requester should back off or rediscover.
func (m *Monitor) BusyRate() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.refusals) == 0 {
		return 0.0
	}
	n := 0
	for _, r := range m.refusals {
		if r {
			n++
		}
	}
	return float64(n) / float64(len(m.refusals))
}

// MeanLatency returns the windowed mean operation latency.
func (m *Monitor) MeanLatency() time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.latencies) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range m.latencies {
		sum += d
	}
	return sum / time.Duration(len(m.latencies))
}

// AdaptiveInterval adapts a period (e.g. the rediscovery interval) to
// observed stability: stable environments back off exponentially to save
// multicasts, churning environments snap back to the minimum so the
// responder list stays fresh (challenge §5.3).
type AdaptiveInterval struct {
	mu         sync.Mutex
	min, max   time.Duration
	cur        time.Duration
	loTh, hiTh float64
}

// NewAdaptiveInterval returns a controller bounded by [min, max],
// starting at min. Thresholds: stability below 0.5 resets to min,
// above 0.9 doubles toward max.
func NewAdaptiveInterval(min, max time.Duration) *AdaptiveInterval {
	if min <= 0 {
		min = 100 * time.Millisecond
	}
	if max < min {
		max = min
	}
	return &AdaptiveInterval{min: min, max: max, cur: min, loTh: 0.5, hiTh: 0.9}
}

// Current returns the present interval.
func (a *AdaptiveInterval) Current() time.Duration {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.cur
}

// Update feeds a stability reading and returns the adapted interval.
func (a *AdaptiveInterval) Update(stability float64) time.Duration {
	a.mu.Lock()
	defer a.mu.Unlock()
	switch {
	case stability < a.loTh:
		a.cur = a.min
	case stability > a.hiTh:
		a.cur *= 2
		if a.cur > a.max {
			a.cur = a.max
		}
	}
	return a.cur
}
