module tiamat

go 1.22
