// Public-API tests: everything here uses only the importable surface a
// downstream user sees (the root package and its public sub-packages).
package tiamat_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"tiamat"
	"tiamat/clock"
	"tiamat/lease"
	"tiamat/space/naive"
	"tiamat/trace"
	"tiamat/transport/memnet"
	"tiamat/tuple"
	"tiamat/wire"
)

var epoch = time.Date(2003, 6, 1, 0, 0, 0, 0, time.UTC)

func pair(t *testing.T) (*tiamat.Instance, *tiamat.Instance, *memnet.Network, *clock.Virtual) {
	t.Helper()
	clk := clock.NewVirtual(epoch)
	net := memnet.New(memnet.WithClock(clk))
	t.Cleanup(net.Close)
	epA, err := net.Attach("a")
	if err != nil {
		t.Fatal(err)
	}
	epB, err := net.Attach("b")
	if err != nil {
		t.Fatal(err)
	}
	net.ConnectAll()
	a, err := tiamat.New(tiamat.Config{Endpoint: epA, Clock: clk})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close() })
	b, err := tiamat.New(tiamat.Config{Endpoint: epB, Clock: clk})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.Close() })
	return a, b, net, clk
}

func TestPublicAPIEndToEnd(t *testing.T) {
	a, b, _, _ := pair(t)
	ctx := context.Background()

	if err := a.Out(tuple.T(tuple.String("msg"), tuple.Int(1)), nil); err != nil {
		t.Fatal(err)
	}
	res, ok, err := b.Inp(ctx, tuple.Tmpl(tuple.String("msg"), tuple.FormalInt()), nil)
	if err != nil || !ok {
		t.Fatalf("Inp = %v %v", ok, err)
	}
	if res.From != "a" {
		t.Fatalf("From = %s", res.From)
	}
	// OutBack returns the tuple to its origin.
	if err := b.OutBack(tiamat.Result{Tuple: res.Tuple, From: res.From}, nil); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := a.Rdp(ctx, tuple.Tmpl(tuple.String("msg"), tuple.FormalInt()), nil); !ok {
		t.Fatal("OutBack did not land at origin")
	}
}

func TestPublicErrorsAreUsable(t *testing.T) {
	a, _, _, clk := pair(t)
	done := make(chan error, 1)
	go func() {
		_, err := a.In(context.Background(),
			tuple.Tmpl(tuple.String("never")),
			lease.Flexible(lease.Terms{Duration: time.Second}))
		done <- err
	}()
	// Let the op register its lease before expiring it.
	for clk.Pending() == 0 {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(5 * time.Millisecond)
	clk.Advance(2 * time.Second)
	select {
	case err := <-done:
		if !errors.Is(err, tiamat.ErrNoMatch) {
			t.Fatalf("err = %v, want tiamat.ErrNoMatch", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("In never returned")
	}
	a.Close()
	if err := a.Out(tuple.T(tuple.Int(1)), nil); !errors.Is(err, tiamat.ErrClosed) {
		t.Fatalf("err = %v, want tiamat.ErrClosed", err)
	}
}

func TestConfigWithCustomSpaceAndMetrics(t *testing.T) {
	clk := clock.NewVirtual(epoch)
	met := &trace.Metrics{}
	net := memnet.New(memnet.WithClock(clk))
	defer net.Close()
	ep, _ := net.Attach("custom")
	inst, err := tiamat.New(tiamat.Config{
		Endpoint: ep,
		Clock:    clk,
		Metrics:  met,
		Space:    naive.New(clk),
		Leases:   lease.ConstrainedCapacity(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()
	if err := inst.Out(tuple.T(tuple.String("x")), nil); err != nil {
		t.Fatal(err)
	}
	if met.Get(trace.CtrOpsOut) != 1 {
		t.Fatalf("metrics not wired: %v", met.Snapshot())
	}
	if inst.LocalSpace().Count() != 2 { // info tuple + x
		t.Fatalf("count = %d", inst.LocalSpace().Count())
	}
}

func TestEvalThroughPublicAPI(t *testing.T) {
	a, b, _, _ := pair(t)
	var fn tiamat.EvalFunc = func(_ context.Context, args tuple.Tuple) (tuple.Tuple, error) {
		v, _ := args.IntAt(0)
		return tuple.T(tuple.String("sq"), tuple.Int(v*v)), nil
	}
	b.RegisterEval("square", fn)
	if err := a.EvalAt("b", "square", tuple.T(tuple.Int(9)), nil); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if _, ok, _ := a.Rdp(context.Background(), tuple.Tmpl(tuple.String("sq"), tuple.Int(81)), nil); ok {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("eval result never appeared in the logical space")
}

func TestSpacesAndSpaceInfoTuple(t *testing.T) {
	a, _, _, _ := pair(t)
	infos, err := a.Spaces(context.Background())
	if err != nil || len(infos) != 2 {
		t.Fatalf("Spaces = %v %v", infos, err)
	}
	p := tuple.Tmpl(tuple.String(tiamat.SpaceInfoName), tuple.String("b"), tuple.FormalBool())
	if _, ok, _ := a.Rdp(context.Background(), p, nil); !ok {
		t.Fatal("remote space-info tuple unreadable")
	}
}

func TestRoutePolicyConstants(t *testing.T) {
	var p tiamat.RoutePolicy = tiamat.RouteLocal
	if p == tiamat.RouteAbandon || tiamat.RouteAbandon == tiamat.RouteRelay {
		t.Fatal("route policies must be distinct")
	}
}

func TestWireAddrFlowsThroughAPI(t *testing.T) {
	a, _, _, _ := pair(t)
	var addr wire.Addr = a.Addr()
	if addr != "a" {
		t.Fatalf("Addr = %s", addr)
	}
	if rl := a.ResponderList(); rl == nil {
		_ = rl // empty list is fine; must not panic
	}
}
