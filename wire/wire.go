// Package wire defines Tiamat's protocol messages and their binary
// encoding. Every exchange between instances — multicast discovery,
// operation propagation, the first-responder-wins take protocol, direct
// remote out/eval, and backbone relaying — is one of these messages.
//
// Frame layout (version 2):
//
//	frame  := magic:2 version:1 type:1 id:uvarint from:str body crc:4
//	str    := len:uvarint bytes
//	body   := type-specific fields (see each message's doc)
//	crc    := IEEE CRC-32 of everything before it, little-endian
//
// The trailing checksum lets every receiver reject corrupted frames
// instead of propagating garbage: a frame that decodes is a frame that
// was received exactly as sent. Version 2 added the checksum; version 1
// frames are rejected with ErrVersion.
//
// The encoding is deliberately self-contained and versioned so the real
// UDP/TCP transport and the simulated network share one codec.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"strings"
	"sync"
	"time"

	"tiamat/tuple"
)

// Addr identifies a Tiamat instance on the network. For the simulated
// transport it is a node name; for the real transport "host:port".
type Addr string

// version is the wire protocol version carried in every frame.
const version = 2

// Type discriminates protocol messages.
type Type uint8

// The protocol message set.
const (
	TInvalid Type = iota
	// TDiscover is the multicast visibility probe sent when an operation
	// needs more responders (paper §3.1.3).
	TDiscover
	// TAnnounce is the unicast reply to a discover, carrying the
	// responder's contact address and space info.
	TAnnounce
	// TOp propagates a rd/rdp/in/inp to a visible instance. TTL bounds
	// how long the responder may hold a waiter for blocking forms.
	TOp
	// TResult returns a match for a TOp. For removing ops the tuple is
	// tentatively held under HoldID pending TAccept/TRelease.
	TResult
	// TAccept finalises a tentative removal (first responder wins).
	TAccept
	// TRelease reinstates a tentative removal (a later responder lost).
	TRelease
	// TCancel withdraws an outstanding TOp (requester lease expired).
	TCancel
	// TOut performs a remote out on a specific instance (paper §2.4).
	TOut
	// TEval performs a remote eval on a specific instance.
	TEval
	// TAck acknowledges TOut/TEval, reporting acceptance or refusal.
	TAck
	// TRelay carries an encapsulated frame via a backbone node (§6).
	TRelay
	// TGoodbye is the multicast departure announcement of a gracefully
	// shutting-down instance: peers drop it from their responder lists
	// immediately instead of waiting for failures to accumulate.
	TGoodbye
)

// String names the message type.
func (t Type) String() string {
	switch t {
	case TDiscover:
		return "discover"
	case TAnnounce:
		return "announce"
	case TOp:
		return "op"
	case TResult:
		return "result"
	case TAccept:
		return "accept"
	case TRelease:
		return "release"
	case TCancel:
		return "cancel"
	case TOut:
		return "out"
	case TEval:
		return "eval"
	case TAck:
		return "ack"
	case TRelay:
		return "relay"
	case TGoodbye:
		return "goodbye"
	default:
		return fmt.Sprintf("type(%d)", uint8(t))
	}
}

// OpCode mirrors the subset of Linda operations that propagate (paper
// §2.2: out/eval act locally by default; rd/rdp/in/inp propagate).
type OpCode uint8

// Propagating operations.
const (
	OpRd OpCode = iota + 1
	OpRdp
	OpIn
	OpInp
)

// Capability bits advertised by an instance on its announces (the
// optional trailing Caps field of TAnnounce). Each bit names a wire
// feature added after the version-2 baseline: a peer that does not
// advertise the bit runs a decoder that rejects frames carrying the
// feature as trailing garbage (ErrFrame). Senders therefore gate every
// versioned field per destination on the peer's advertised set — see
// FeaturesOf for the field→bit mapping. The zero set is the baseline-v2
// protocol: no optional trailing fields at all.
const (
	// CapBudget: optional TOp budget trailer (requester lease budget).
	CapBudget uint64 = 1 << iota
	// CapBusy: optional busy marker on TResult/TAck (governor refusals).
	CapBusy
	// CapCoalescedAcks: optional AckIDs list on TAck (batched ack path).
	CapCoalescedAcks
	// CapDegraded: optional degraded marker on TAnnounce (gray health).
	CapDegraded
	// CapGoodbye: the TGoodbye departure announcement.
	CapGoodbye
	// CapReplicaIdentity: optional replica identity on TOut/TCancel/
	// TResult and the failover marker on TOp (replication protocol).
	CapReplicaIdentity
	// CapCapsExchange: the optional Caps trailer on TAnnounce itself —
	// the peer understands capability announcements.
	CapCapsExchange
)

// CapsCurrent is the full capability set of this build: every feature
// bit the local codec can encode and decode.
const CapsCurrent = CapBudget | CapBusy | CapCoalescedAcks | CapDegraded |
	CapGoodbye | CapReplicaIdentity | CapCapsExchange

// CapsString renders a capability set for logs ("budget|busy|…", or
// "baseline" for the empty set).
func CapsString(caps uint64) string {
	if caps == 0 {
		return "baseline"
	}
	names := []struct {
		bit  uint64
		name string
	}{
		{CapBudget, "budget"},
		{CapBusy, "busy"},
		{CapCoalescedAcks, "coalesced-acks"},
		{CapDegraded, "degraded"},
		{CapGoodbye, "goodbye"},
		{CapReplicaIdentity, "replica-identity"},
		{CapCapsExchange, "caps-exchange"},
	}
	var b strings.Builder
	for _, n := range names {
		if caps&n.bit == 0 {
			continue
		}
		if b.Len() > 0 {
			b.WriteByte('|')
		}
		b.WriteString(n.name)
		caps &^= n.bit
	}
	if caps != 0 {
		if b.Len() > 0 {
			b.WriteByte('|')
		}
		fmt.Fprintf(&b, "unknown(%#x)", caps)
	}
	return b.String()
}

// FeaturesOf reports the capability bits a message's encoding would
// require of its receiver: the set of post-baseline features whose
// optional fields the frame carries. A baseline-v2 decoder accepts the
// frame iff FeaturesOf(m) == 0; more generally, a peer advertising caps
// decodes the frame iff FeaturesOf(m) &^ caps == 0. Senders use this to
// verify (and transports to enforce) that nothing undecodable is ever
// put on the wire toward a known-baseline peer.
func FeaturesOf(m *Message) uint64 {
	var f uint64
	switch m.Type {
	case TOp:
		if m.Budget > 0 {
			f |= CapBudget
		}
		if m.Failover {
			// The failover marker forces the budget trailer too.
			f |= CapBudget | CapReplicaIdentity
		}
	case TResult:
		if m.Busy {
			f |= CapBusy
		}
		if m.ReplSeq != 0 {
			// The identity forces the busy byte to be encoded.
			f |= CapBusy | CapReplicaIdentity
		}
	case TAck:
		if m.Busy {
			f |= CapBusy
		}
		if len(m.AckIDs) > 0 {
			f |= CapBusy | CapCoalescedAcks
		}
	case TAnnounce:
		if m.Degraded {
			f |= CapDegraded
		}
		if m.Caps != 0 {
			f |= CapDegraded | CapCapsExchange
		}
	case TCancel, TOut:
		if m.ReplSeq != 0 {
			f |= CapReplicaIdentity
		}
	case TGoodbye:
		f |= CapGoodbye
	}
	return f
}

// Removes reports whether the operation removes its match.
func (o OpCode) Removes() bool { return o == OpIn || o == OpInp }

// Blocking reports whether the operation may wait for a match.
func (o OpCode) Blocking() bool { return o == OpRd || o == OpIn }

// String names the op.
func (o OpCode) String() string {
	switch o {
	case OpRd:
		return "rd"
	case OpRdp:
		return "rdp"
	case OpIn:
		return "in"
	case OpInp:
		return "inp"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// Message is a decoded protocol frame. Fields beyond Type/ID/From are
// populated according to the type, as documented on each constant.
type Message struct {
	Type Type
	// ID correlates requests with responses; unique per sender.
	ID uint64
	// From is the sender's contact address.
	From Addr

	// Op fields (TOp).
	Op       OpCode
	Template tuple.Template
	// TTL bounds responder-side effort (blocking hold time, out expiry).
	TTL time.Duration
	// Hops is the remaining flood radius (used by flooding protocols;
	// Tiamat proper does not re-flood).
	Hops uint8
	// Budget is the requester's remaining operation budget (TOp), when it
	// is tighter than TTL: a responder must not hold a waiter or a
	// tentative removal past the point the requester's lease or context
	// can still use the answer. Zero means "same as TTL" — the field is
	// only encoded when it carries new information, so frames stay
	// decodable by pre-Budget peers in the common case (see AppendEncode).
	Budget time.Duration

	// Tuple payload (TResult, TOut, TEval args).
	Tuple tuple.Tuple
	// Found reports whether TResult carries a match.
	Found bool
	// HoldID identifies a tentative removal on the responder.
	HoldID uint64
	// Busy marks a not-found TResult or a refusing TAck as an explicit
	// admission refusal (the responder's governor shed the operation)
	// rather than a genuine miss or failure: the requester should fail
	// over, not retry here. Only encoded when true; absent means a normal
	// reply for pre-Busy peers.
	Busy bool

	// OK and Err report TAck outcomes.
	OK  bool
	Err string
	// AckIDs extends a TAck to cover additional operation IDs beyond
	// m.ID: a transport flushing a batch of pure successful acks to one
	// peer merges them into a single frame. Only pure acks (OK, empty
	// Err, not Busy) are ever merged, so every covered ID shares the
	// frame's outcome. Only encoded when non-empty — a single ack stays
	// byte-identical to the pre-batching revision, and pre-batching
	// peers reject coalesced frames as trailing garbage rather than
	// misreading them (the sender's per-ID retry then re-acks singly).
	AckIDs []uint64

	// Persistent is the space-info flag carried by TAnnounce.
	Persistent bool
	// Degraded is the self-reported gray-failure flag carried by
	// TAnnounce: the announcer is serving but slow (WAL fsync stalls,
	// governor queue delay), so requesters should deprioritize it. Only
	// encoded when true; absent means healthy for pre-Degraded peers.
	Degraded bool
	// Caps is the announcer's capability set (TAnnounce): the Cap* bits
	// naming which post-baseline wire features its decoder accepts.
	// Optional trailing field; zero is never encoded, so a caps-less
	// announce stays byte-identical to the pre-capability revision and
	// an absent field means "capabilities unknown" — receivers must
	// assume the conservative baseline until a caps-bearing announce
	// arrives (internal/discovery tracks this per peer).
	Caps uint64

	// Func is the registered eval function name (TEval).
	Func string

	// Replication extension (DESIGN.md §13), riding existing frame types
	// as optional trailing fields. ReplSeq != 0 marks the frame as part
	// of the replica protocol and identifies a replicated tuple as
	// (ReplOrigin, ReplSeq) — the address of the instance whose out
	// created it plus that origin's write sequence number:
	//
	//   - TOut: a replicate/repair write-through — store a soft-state
	//     replica copy under this identity instead of an authoritative
	//     out. Acked like any remote out.
	//   - TCancel: a replica invalidation — the identified tuple was
	//     consumed (or its origin withdrew it); drop the copy and fence
	//     the identity against late replicates.
	//   - TResult: the found tuple is replicated under this identity, so
	//     the taker can invalidate the surviving copies itself on accept.
	//
	// Absent fields mean the pre-replication protocol; R=1 nodes never
	// set them, keeping their frames byte-identical. Old decoders reject
	// extended frames as trailing garbage — they degrade to
	// single-holder behaviour, never misread a replica frame.
	ReplOrigin Addr
	ReplSeq    uint64
	// Failover marks a destructive TOp that may be served from the
	// responder's replica store when the copy's origin is provably dead
	// (the failover take, DESIGN.md §13). Optional trailing field with
	// the same mixed-version contract as Budget.
	Failover bool

	// Target is the final destination of a TRelay frame.
	Target Addr
	// Payload is the encapsulated frame carried by TRelay.
	Payload []byte
}

// Codec errors.
var (
	// ErrFrame reports a malformed or truncated frame.
	ErrFrame = errors.New("wire: malformed frame")
	// ErrVersion reports an unsupported protocol version.
	ErrVersion = errors.New("wire: unsupported version")
	// ErrChecksum reports a frame whose CRC trailer does not match its
	// contents: the frame was corrupted in transit.
	ErrChecksum = errors.New("wire: checksum mismatch")
)

const (
	magicA = 0x7A // 'z'-ish arbitrary magic
	magicB = 0x03 // protocol family
	maxStr = 1 << 20
)

// Buf is a pooled encode buffer. Transports obtain one with GetBuf,
// append a frame with AppendEncode, hand B to the network, and Release
// it once the bytes are no longer referenced (after the write syscall,
// or after the simulated network has taken its own copy).
type Buf struct {
	B []byte
}

// bufPool recycles encode buffers across sends. Oversized buffers are
// dropped on Release so one huge frame does not pin its capacity forever.
var bufPool = sync.Pool{
	New: func() any { return &Buf{B: make([]byte, 0, 512)} },
}

// maxPooledBuf bounds the capacity retained by the pool.
const maxPooledBuf = 64 << 10

// GetBuf returns an empty pooled buffer.
func GetBuf() *Buf {
	b := bufPool.Get().(*Buf)
	b.B = b.B[:0]
	return b
}

// Release returns the buffer to the pool. The caller must not touch B
// afterwards.
func (b *Buf) Release() {
	if b == nil || cap(b.B) > maxPooledBuf {
		return
	}
	bufPool.Put(b)
}

// Encode serialises the message to a fresh buffer. Hot paths should
// prefer AppendEncode with a pooled Buf; Encode remains for callers
// whose frame escapes (e.g. a relay payload embedded in another frame).
func Encode(m *Message) []byte {
	return AppendEncode(make([]byte, 0, 64), m)
}

// AppendEncode appends the message's frame to dst and returns the
// extended slice. The checksum covers only the appended frame, so dst
// may already hold transport framing (e.g. a length prefix).
func AppendEncode(dst []byte, m *Message) []byte {
	mark := len(dst)
	b := dst
	b = append(b, magicA, magicB, version, byte(m.Type))
	b = binary.AppendUvarint(b, m.ID)
	b = appendStr(b, string(m.From))
	switch m.Type {
	case TDiscover:
		// header only
	case TAnnounce:
		b = appendBool(b, m.Persistent)
		// Optional trailing degraded marker, same mixed-version contract
		// as TOp's budget field: a healthy announce is byte-identical to
		// the pre-Degraded revision, and peers running the previous code
		// reject degraded announces as trailing garbage — they merely
		// fail to learn the hint, never act on a misread one. When the
		// capability set follows, degraded is encoded even if false so
		// the decoder can tell the two optional fields apart.
		if m.Degraded || m.Caps != 0 {
			b = appendBool(b, m.Degraded)
		}
		// Optional capability set: the announcer's Cap* bits. Absent
		// means capabilities unknown (assume baseline); zero is never
		// encoded, keeping caps-less announces byte-identical to the
		// pre-capability revision.
		if m.Caps != 0 {
			b = binary.AppendUvarint(b, m.Caps)
		}
	case TOp:
		b = append(b, byte(m.Op), m.Hops)
		b = binary.AppendUvarint(b, uint64(m.TTL/time.Millisecond))
		b = m.Template.AppendBinary(b)
		// Optional trailing budget: only when it differs from TTL, so the
		// common frame is byte-identical to the pre-Budget revision.
		// Peers running the previous code reject budget-carrying frames
		// as trailing garbage and the requester fails over — degraded,
		// never incorrect (see serve-side fallback note in core).
		// When the failover marker follows, the budget is encoded even if
		// zero so the decoder can tell the two optional fields apart.
		if m.Budget > 0 || m.Failover {
			b = binary.AppendUvarint(b, uint64(m.Budget/time.Millisecond))
		}
		if m.Failover {
			b = appendBool(b, true)
		}
	case TResult:
		b = appendBool(b, m.Found)
		b = binary.AppendUvarint(b, m.HoldID)
		if m.Found {
			b = m.Tuple.AppendBinary(b)
		}
		// Optional trailing busy marker (admission refusal), same
		// mixed-version contract as TOp's budget field. When the replica
		// identity follows, busy is encoded even if false so the decoder
		// can tell the optional fields apart.
		if m.Busy || m.ReplSeq != 0 {
			b = appendBool(b, m.Busy)
		}
		if m.ReplSeq != 0 {
			b = appendStr(b, string(m.ReplOrigin))
			b = binary.AppendUvarint(b, m.ReplSeq)
		}
	case TAccept, TRelease:
		b = binary.AppendUvarint(b, m.HoldID)
	case TCancel:
		b = binary.AppendUvarint(b, m.HoldID)
		// Optional replica identity: a cancel carrying one is an
		// invalidation of that replicated tuple, not an op withdrawal.
		if m.ReplSeq != 0 {
			b = appendStr(b, string(m.ReplOrigin))
			b = binary.AppendUvarint(b, m.ReplSeq)
		}
	case TOut:
		b = binary.AppendUvarint(b, uint64(m.TTL/time.Millisecond))
		b = m.Tuple.AppendBinary(b)
		// Optional replica identity: marks the frame as a replicate/repair
		// write-through rather than an authoritative remote out.
		if m.ReplSeq != 0 {
			b = appendStr(b, string(m.ReplOrigin))
			b = binary.AppendUvarint(b, m.ReplSeq)
		}
	case TEval:
		b = appendStr(b, m.Func)
		b = binary.AppendUvarint(b, uint64(m.TTL/time.Millisecond))
		b = m.Tuple.AppendBinary(b)
	case TAck:
		b = appendBool(b, m.OK)
		b = appendStr(b, m.Err)
		// Optional trailing busy marker, same contract as TResult's.
		// When AckIDs follow, the busy byte is encoded even if false so
		// the decoder can tell the two optional fields apart.
		if m.Busy || len(m.AckIDs) > 0 {
			b = appendBool(b, m.Busy)
		}
		if len(m.AckIDs) > 0 {
			b = binary.AppendUvarint(b, uint64(len(m.AckIDs)))
			for _, id := range m.AckIDs {
				b = binary.AppendUvarint(b, id)
			}
		}
	case TRelay:
		b = appendStr(b, string(m.Target))
		b = binary.AppendUvarint(b, uint64(len(m.Payload)))
		b = append(b, m.Payload...)
	case TGoodbye:
		// header only
	}
	return binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(b[mark:]))
}

// Decode parses a frame, verifying its checksum. The entire buffer must
// be consumed. The result shares no memory with data.
func Decode(data []byte) (*Message, error) {
	return decode(data, false)
}

// DecodeNoCopy parses a frame whose variable-length contents (relay
// Payload, tuple/template bytes fields) alias data instead of being
// copied. The caller must keep data alive and unmodified for the
// message's lifetime, or detach the parts it retains (Tuple.Copy,
// Template.Copy, or cloning Payload). Receive loops that process one
// frame per buffer use it to avoid per-field allocations.
func DecodeNoCopy(data []byte) (*Message, error) {
	return decode(data, true)
}

func decode(data []byte, alias bool) (*Message, error) {
	if len(data) < 4 {
		return nil, fmt.Errorf("short frame (%d bytes): %w", len(data), ErrFrame)
	}
	if data[0] != magicA || data[1] != magicB {
		return nil, fmt.Errorf("bad magic %x%x: %w", data[0], data[1], ErrFrame)
	}
	if data[2] != version {
		return nil, fmt.Errorf("version %d: %w", data[2], ErrVersion)
	}
	if len(data) < 8 {
		return nil, fmt.Errorf("short frame (%d bytes): %w", len(data), ErrFrame)
	}
	body, trailer := data[:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(trailer) {
		return nil, ErrChecksum
	}
	m := &Message{Type: Type(data[3])}
	if m.Type == TInvalid || m.Type > TGoodbye {
		return nil, fmt.Errorf("type %d: %w", data[3], ErrFrame)
	}
	src := body[4:]
	var err error
	if m.ID, src, err = readUvarint(src); err != nil {
		return nil, fmt.Errorf("id: %w", err)
	}
	var from string
	if from, src, err = readStr(src); err != nil {
		return nil, fmt.Errorf("from: %w", err)
	}
	m.From = Addr(from)

	switch m.Type {
	case TDiscover:
	case TAnnounce:
		if m.Persistent, src, err = readBool(src); err != nil {
			return nil, err
		}
		// Optional degraded marker: absent means a healthy announcer.
		// The encoder omits a false marker unless a caps field follows,
		// so a bare explicit false is malformed — rejecting it keeps
		// every frame's canonical encoding unique.
		if len(src) > 0 {
			if m.Degraded, src, err = readBool(src); err != nil {
				return nil, err
			}
			if !m.Degraded && len(src) == 0 {
				return nil, fmt.Errorf("non-canonical degraded marker: %w", ErrFrame)
			}
		}
		// Optional capability set: absent means capabilities unknown
		// (assume baseline). A zero value is never encoded, so decode
		// it as malformed rather than let a truncated trailer alias the
		// "unknown" state.
		if len(src) > 0 {
			if m.Caps, src, err = readUvarint(src); err != nil {
				return nil, fmt.Errorf("caps: %w", err)
			}
			if m.Caps == 0 {
				return nil, fmt.Errorf("caps 0: %w", ErrFrame)
			}
		}
	case TOp:
		if len(src) < 1 {
			return nil, fmt.Errorf("op code: %w", ErrFrame)
		}
		m.Op = OpCode(src[0])
		src = src[1:]
		if m.Op < OpRd || m.Op > OpInp {
			return nil, fmt.Errorf("op %d: %w", m.Op, ErrFrame)
		}
		if len(src) < 1 {
			return nil, fmt.Errorf("hops: %w", ErrFrame)
		}
		m.Hops = src[0]
		src = src[1:]
		var ttl uint64
		if ttl, src, err = readUvarint(src); err != nil {
			return nil, err
		}
		m.TTL = time.Duration(ttl) * time.Millisecond
		if m.Template, src, err = decodeTemplate(src, alias); err != nil {
			return nil, fmt.Errorf("template: %w", err)
		}
		// Optional budget field: absent (pre-Budget peer, or budget==TTL)
		// means the TTL is the whole story.
		if len(src) > 0 {
			var budget uint64
			if budget, src, err = readUvarint(src); err != nil {
				return nil, fmt.Errorf("budget: %w", err)
			}
			m.Budget = time.Duration(budget) * time.Millisecond
			// A zero budget is only encoded as filler ahead of a failover
			// marker; bare it is malformed (absent means budget==TTL).
			if m.Budget == 0 && len(src) == 0 {
				return nil, fmt.Errorf("non-canonical budget: %w", ErrFrame)
			}
		}
		// Optional failover marker: absent means an ordinary op, and an
		// explicit false is never encoded.
		if len(src) > 0 {
			if m.Failover, src, err = readBool(src); err != nil {
				return nil, fmt.Errorf("failover: %w", err)
			}
			if !m.Failover {
				return nil, fmt.Errorf("non-canonical failover marker: %w", ErrFrame)
			}
		}
	case TResult:
		if m.Found, src, err = readBool(src); err != nil {
			return nil, err
		}
		if m.HoldID, src, err = readUvarint(src); err != nil {
			return nil, err
		}
		if m.Found {
			if m.Tuple, src, err = decodeTuple(src, alias); err != nil {
				return nil, fmt.Errorf("tuple: %w", err)
			}
		}
		// Optional busy marker: absent means a normal result. A false
		// marker is only encoded as filler ahead of a replica identity.
		if len(src) > 0 {
			if m.Busy, src, err = readBool(src); err != nil {
				return nil, err
			}
			if !m.Busy && len(src) == 0 {
				return nil, fmt.Errorf("non-canonical busy marker: %w", ErrFrame)
			}
		}
		// Optional replica identity: absent means a single-holder tuple.
		if len(src) > 0 {
			if m.ReplOrigin, m.ReplSeq, src, err = readRepl(src); err != nil {
				return nil, err
			}
		}
	case TAccept, TRelease:
		if m.HoldID, src, err = readUvarint(src); err != nil {
			return nil, err
		}
	case TCancel:
		if m.HoldID, src, err = readUvarint(src); err != nil {
			return nil, err
		}
		// Optional replica identity: present means an invalidation.
		if len(src) > 0 {
			if m.ReplOrigin, m.ReplSeq, src, err = readRepl(src); err != nil {
				return nil, err
			}
		}
	case TOut:
		var ttl uint64
		if ttl, src, err = readUvarint(src); err != nil {
			return nil, err
		}
		m.TTL = time.Duration(ttl) * time.Millisecond
		if m.Tuple, src, err = decodeTuple(src, alias); err != nil {
			return nil, fmt.Errorf("tuple: %w", err)
		}
		// Optional replica identity: present means a replicate/repair
		// write-through, not an authoritative remote out.
		if len(src) > 0 {
			if m.ReplOrigin, m.ReplSeq, src, err = readRepl(src); err != nil {
				return nil, err
			}
		}
	case TEval:
		if m.Func, src, err = readStr(src); err != nil {
			return nil, err
		}
		var ttl uint64
		if ttl, src, err = readUvarint(src); err != nil {
			return nil, err
		}
		m.TTL = time.Duration(ttl) * time.Millisecond
		if m.Tuple, src, err = decodeTuple(src, alias); err != nil {
			return nil, fmt.Errorf("args: %w", err)
		}
	case TAck:
		if m.OK, src, err = readBool(src); err != nil {
			return nil, err
		}
		if m.Err, src, err = readStr(src); err != nil {
			return nil, err
		}
		// Optional busy marker: absent means a normal ack. A false
		// marker is only encoded as filler ahead of a coalesced ID list.
		if len(src) > 0 {
			if m.Busy, src, err = readBool(src); err != nil {
				return nil, err
			}
			if !m.Busy && len(src) == 0 {
				return nil, fmt.Errorf("non-canonical busy marker: %w", ErrFrame)
			}
		}
		// Optional coalesced-ack ID list: absent means the ack covers
		// only m.ID.
		if len(src) > 0 {
			var n uint64
			if n, src, err = readUvarint(src); err != nil {
				return nil, err
			}
			if n == 0 || n > maxStr {
				return nil, fmt.Errorf("ack ids %d: %w", n, ErrFrame)
			}
			m.AckIDs = make([]uint64, n)
			for j := range m.AckIDs {
				if m.AckIDs[j], src, err = readUvarint(src); err != nil {
					return nil, err
				}
			}
		}
	case TRelay:
		var target string
		if target, src, err = readStr(src); err != nil {
			return nil, err
		}
		m.Target = Addr(target)
		var n uint64
		if n, src, err = readUvarint(src); err != nil {
			return nil, err
		}
		if n > maxStr || uint64(len(src)) < n {
			return nil, fmt.Errorf("payload %d: %w", n, ErrFrame)
		}
		if alias {
			m.Payload = src[:n:n]
		} else {
			m.Payload = append([]byte(nil), src[:n]...)
		}
		src = src[n:]
	case TGoodbye:
		// header only
	}
	if len(src) != 0 {
		return nil, fmt.Errorf("%d trailing bytes: %w", len(src), ErrFrame)
	}
	return m, nil
}

func decodeTuple(src []byte, alias bool) (tuple.Tuple, []byte, error) {
	if alias {
		return tuple.DecodeTupleNoCopy(src)
	}
	return tuple.DecodeTuple(src)
}

func decodeTemplate(src []byte, alias bool) (tuple.Template, []byte, error) {
	if alias {
		return tuple.DecodeTemplateNoCopy(src)
	}
	return tuple.DecodeTemplate(src)
}

func appendStr(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

func readUvarint(src []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(src)
	if n <= 0 {
		return 0, nil, ErrFrame
	}
	return v, src[n:], nil
}

func readStr(src []byte) (string, []byte, error) {
	n, src, err := readUvarint(src)
	if err != nil {
		return "", nil, err
	}
	if n > maxStr || uint64(len(src)) < n {
		return "", nil, ErrFrame
	}
	return string(src[:n]), src[n:], nil
}

// readRepl reads a replica identity (origin address + sequence). The
// identity is only ever encoded with a nonzero sequence, so a zero here
// is a malformed frame, not "no replication" — fail closed rather than
// let a truncated or crafted trailer decode to a different meaning.
func readRepl(src []byte) (Addr, uint64, []byte, error) {
	origin, src, err := readStr(src)
	if err != nil {
		return "", 0, nil, fmt.Errorf("repl origin: %w", err)
	}
	seq, src, err := readUvarint(src)
	if err != nil {
		return "", 0, nil, fmt.Errorf("repl seq: %w", err)
	}
	if seq == 0 {
		return "", 0, nil, fmt.Errorf("repl seq 0: %w", ErrFrame)
	}
	return Addr(origin), seq, src, nil
}

func readBool(src []byte) (bool, []byte, error) {
	if len(src) < 1 {
		return false, nil, ErrFrame
	}
	if src[0] > 1 {
		return false, nil, fmt.Errorf("bool %d: %w", src[0], ErrFrame)
	}
	return src[0] == 1, src[1:], nil
}
