package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"testing"
)

// These tests pin the coalesced-ack encoding (DESIGN.md §12): the AckIDs
// field is an optional trailer on TAck, so batched senders interoperate
// with pre-AckIDs decoders the same way every other optional field does —
// old peers reject the unfamiliar frame as ErrFrame (degraded) rather
// than misreading it (incorrect), and single acks are byte-identical to
// what they always were.

func TestAckIDsRoundtrip(t *testing.T) {
	cases := []*Message{
		{Type: TAck, ID: 7, From: "a", OK: true, AckIDs: []uint64{9, 12, 1 << 40}},
		{Type: TAck, ID: 1, From: "a", OK: true, Busy: true, AckIDs: []uint64{2}},
		{Type: TAck, ID: 3, From: "a", OK: true, Err: "held", AckIDs: []uint64{4, 5}},
	}
	for _, want := range cases {
		got, err := Decode(Encode(want))
		if err != nil {
			t.Fatalf("decode %+v: %v", want, err)
		}
		if got.ID != want.ID || got.OK != want.OK || got.Busy != want.Busy ||
			got.Err != want.Err || len(got.AckIDs) != len(want.AckIDs) {
			t.Fatalf("roundtrip %+v -> %+v", want, got)
		}
		for i := range want.AckIDs {
			if got.AckIDs[i] != want.AckIDs[i] {
				t.Fatalf("ack id %d: got %d want %d", i, got.AckIDs[i], want.AckIDs[i])
			}
		}
	}
}

// TestSingleAckEncodingUnchanged pins the mixed-version contract from
// both directions: a plain ack (no AckIDs) must not grow any new bytes —
// its encoding is exactly the old one — and a coalesced ack must be a
// strict extension of the plain encoding, i.e. the extra information
// rides as trailing bytes. A pre-AckIDs decoder consumes the old prefix
// and then fails the whole-buffer check, so coalescing degrades to
// ErrFrame on old peers instead of silently dropping the extra IDs.
func TestSingleAckEncodingUnchanged(t *testing.T) {
	plain := Encode(&Message{Type: TAck, ID: 7, From: "a", OK: true})
	// Reconstruct the pre-AckIDs layout by hand: header, id, from, ok,
	// empty err — and no optional busy byte, because Busy is false.
	var want []byte
	want = append(want, plain[0], plain[1], plain[2], byte(TAck))
	want = binary.AppendUvarint(want, 7)
	want = binary.AppendUvarint(want, 1)
	want = append(want, 'a')
	want = append(want, 1)                       // ok
	want = binary.AppendUvarint(want, 0)         // err ""
	want = binary.LittleEndian.AppendUint32(want, crc32.ChecksumIEEE(want))
	if !bytes.Equal(plain, want) {
		t.Fatalf("plain ack encoding changed:\n got %x\nwant %x", plain, want)
	}

	with := Encode(&Message{Type: TAck, ID: 7, From: "a", OK: true, AckIDs: []uint64{8}})
	if !bytes.HasPrefix(with[:len(with)-4], plain[:len(plain)-4]) {
		t.Fatalf("coalesced ack is not an extension of the plain encoding:\n plain %x\n with  %x", plain, with)
	}
	if len(with) <= len(plain) {
		t.Fatal("coalesced ack did not grow the frame")
	}
}

// seal appends a valid CRC trailer to a hand-edited frame body.
func seal(body []byte) []byte {
	return binary.LittleEndian.AppendUint32(append([]byte(nil), body...), crc32.ChecksumIEEE(body))
}

func TestAckIDsZeroCountRejected(t *testing.T) {
	frame := Encode(&Message{Type: TAck, ID: 7, From: "a", OK: true})
	body := frame[:len(frame)-4]
	// Busy byte (false) followed by a zero-length ID list: well-formed
	// varints, but an empty list carries no information and is reserved.
	crafted := seal(append(append(append([]byte(nil), body...), 0), 0))
	if _, err := Decode(crafted); !errors.Is(err, ErrFrame) {
		t.Fatalf("zero-count ack ids: err = %v, want ErrFrame", err)
	}
}

// TestAckTrailingBytesStillRejected keeps the fail-closed contract alive
// for whatever optional field comes after AckIDs: bytes beyond the ID
// list are an error today, so a future extension degrades on this
// decoder exactly as AckIDs degrades on its predecessors.
func TestAckTrailingBytesStillRejected(t *testing.T) {
	frame := Encode(&Message{Type: TAck, ID: 7, From: "a", OK: true, AckIDs: []uint64{8, 9}})
	body := frame[:len(frame)-4]
	crafted := seal(append(append([]byte(nil), body...), 0))
	if _, err := Decode(crafted); !errors.Is(err, ErrFrame) {
		t.Fatalf("trailing byte after ack ids: err = %v, want ErrFrame", err)
	}
}
