package wire

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"tiamat/tuple"
)

// truncated strips the CRC and drops n trailing body bytes.
func truncated(frame []byte, n int) []byte {
	body := frame[:len(frame)-4]
	return append([]byte(nil), body[:len(body)-n]...)
}

// reframe appends a fresh checksum so only the body mutation, not a CRC
// mismatch, is what the decoder sees.
func reframe(body []byte) []byte {
	return binary.LittleEndian.AppendUint32(body, crc32.ChecksumIEEE(body))
}

func roundTrip(t *testing.T, m *Message) *Message {
	t.Helper()
	data := Encode(m)
	back, err := Decode(data)
	if err != nil {
		t.Fatalf("decode %s: %v", m.Type, err)
	}
	return back
}

func TestRoundTripAllTypes(t *testing.T) {
	tp := tuple.T(tuple.String("req"), tuple.Int(7))
	pl := Encode(&Message{Type: TDiscover, ID: 1, From: "x"})
	msgs := []*Message{
		{Type: TDiscover, ID: 1, From: "a"},
		{Type: TAnnounce, ID: 2, From: "b", Persistent: true},
		{Type: TOp, ID: 3, From: "c", Op: OpIn, TTL: 1500 * time.Millisecond,
			Template: tuple.Tmpl(tuple.String("req"), tuple.FormalInt())},
		{Type: TResult, ID: 3, From: "d", Found: true, HoldID: 9, Tuple: tp},
		{Type: TResult, ID: 4, From: "d", Found: false, HoldID: 0},
		{Type: TAccept, ID: 3, From: "c", HoldID: 9},
		{Type: TRelease, ID: 3, From: "c", HoldID: 9},
		{Type: TCancel, ID: 3, From: "c", HoldID: 0},
		{Type: TOut, ID: 5, From: "e", TTL: time.Minute, Tuple: tp},
		{Type: TEval, ID: 6, From: "f", Func: "mandel", TTL: time.Second, Tuple: tp},
		{Type: TAck, ID: 5, From: "g", OK: false, Err: "lease: refused"},
		{Type: TRelay, ID: 7, From: "h", Target: "far", Payload: pl},
		{Type: TGoodbye, ID: 8, From: "i"},
	}
	for _, m := range msgs {
		back := roundTrip(t, m)
		if back.Type != m.Type || back.ID != m.ID || back.From != m.From {
			t.Fatalf("%s header mismatch: %+v", m.Type, back)
		}
		switch m.Type {
		case TAnnounce:
			if back.Persistent != m.Persistent {
				t.Fatal("persistent lost")
			}
		case TOp:
			if back.Op != m.Op || back.TTL != m.TTL || back.Template.Arity() != m.Template.Arity() {
				t.Fatalf("op mismatch: %+v", back)
			}
			if !back.Template.Matches(tp) {
				t.Fatal("template lost match behaviour")
			}
		case TResult:
			if back.Found != m.Found || back.HoldID != m.HoldID {
				t.Fatalf("result mismatch: %+v", back)
			}
			if m.Found && !back.Tuple.Equal(m.Tuple) {
				t.Fatal("tuple lost")
			}
		case TAccept, TRelease, TCancel:
			if back.HoldID != m.HoldID {
				t.Fatal("holdID lost")
			}
		case TOut:
			if back.TTL != m.TTL || !back.Tuple.Equal(m.Tuple) {
				t.Fatal("out payload lost")
			}
		case TEval:
			if back.Func != m.Func || !back.Tuple.Equal(m.Tuple) || back.TTL != m.TTL {
				t.Fatal("eval payload lost")
			}
		case TAck:
			if back.OK != m.OK || back.Err != m.Err {
				t.Fatal("ack payload lost")
			}
		case TRelay:
			if back.Target != m.Target {
				t.Fatal("target lost")
			}
			inner, err := Decode(back.Payload)
			if err != nil || inner.Type != TDiscover {
				t.Fatalf("relay payload corrupt: %v", err)
			}
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	good := Encode(&Message{Type: TDiscover, ID: 1, From: "a"})
	cases := map[string][]byte{
		"empty":       {},
		"short":       {magicA, magicB, version},
		"bad magic":   {0, 0, version, byte(TDiscover), 0, 0},
		"bad version": {magicA, magicB, 99, byte(TDiscover), 0, 0},
		"bad type":    {magicA, magicB, version, 200, 0, 0},
		"zero type":   {magicA, magicB, version, 0, 0, 0},
		"trailing":    append(append([]byte{}, good...), 1, 2, 3),
		"truncated":   good[:len(good)-1],
	}
	for name, data := range cases {
		if _, err := Decode(data); err == nil {
			t.Errorf("%s: decode succeeded", name)
		}
	}
	if _, err := Decode([]byte{magicA, magicB, 99, byte(TDiscover), 0, 0}); !errors.Is(err, ErrVersion) {
		t.Errorf("version error = %v", err)
	}
}

func TestDecodeRejectsCorruptFrames(t *testing.T) {
	// Any single-byte corruption anywhere in the frame must be caught by
	// the CRC trailer (or an earlier structural check) — never decoded
	// into a different message.
	m := &Message{Type: TResult, ID: 42, From: "node-7", Found: true, HoldID: 3,
		Tuple: tuple.T(tuple.String("req"), tuple.Int(99))}
	good := Encode(m)
	for i := range good {
		bad := append([]byte(nil), good...)
		bad[i] ^= 0x55
		if _, err := Decode(bad); err == nil {
			t.Fatalf("corruption at byte %d accepted", i)
		}
	}
	flipped := append([]byte(nil), good...)
	flipped[len(flipped)-1] ^= 0xFF
	if _, err := Decode(flipped); !errors.Is(err, ErrChecksum) {
		t.Fatalf("trailer corruption: err = %v, want ErrChecksum", err)
	}
}

func TestDecodeBadOpCode(t *testing.T) {
	m := &Message{Type: TOp, ID: 1, From: "a", Op: OpRd, TTL: time.Second,
		Template: tuple.Tmpl(tuple.Any())}
	data := Encode(m)
	// Corrupt the op code byte (immediately after header id+from).
	for i, b := range data {
		if b == byte(OpRd) && i > 4 {
			data[i] = 99
			break
		}
	}
	if _, err := Decode(data); err == nil {
		t.Fatal("bad op code accepted")
	}
}

func TestOpCodeHelpers(t *testing.T) {
	if !OpIn.Removes() || !OpInp.Removes() || OpRd.Removes() || OpRdp.Removes() {
		t.Error("Removes wrong")
	}
	if !OpIn.Blocking() || !OpRd.Blocking() || OpInp.Blocking() || OpRdp.Blocking() {
		t.Error("Blocking wrong")
	}
	for _, o := range []OpCode{OpRd, OpRdp, OpIn, OpInp} {
		if o.String() == "" {
			t.Error("empty op name")
		}
	}
	if OpCode(99).String() == "" || Type(99).String() == "" {
		t.Error("unknown codes must render")
	}
	for ty := TDiscover; ty <= TGoodbye; ty++ {
		if ty.String() == "" {
			t.Errorf("type %d has empty name", ty)
		}
	}
}

type randMsg struct{ M *Message }

func (randMsg) Generate(r *rand.Rand, _ int) reflect.Value {
	types := []Type{TDiscover, TAnnounce, TOp, TResult, TAccept, TRelease, TCancel, TOut, TEval, TAck, TRelay, TGoodbye}
	m := &Message{Type: types[r.Intn(len(types))], ID: r.Uint64() >> 1, From: Addr(randWord(r))}
	switch m.Type {
	case TAnnounce:
		m.Persistent = r.Intn(2) == 0
		m.Degraded = r.Intn(2) == 0
		if r.Intn(2) == 0 {
			m.Caps = 1 + r.Uint64()%uint64(2*CapsCurrent)
		}
	case TOp:
		m.Op = OpCode(1 + r.Intn(4))
		m.TTL = time.Duration(r.Intn(10000)) * time.Millisecond
		m.Template = tuple.Tmpl(tuple.FormalString(), tuple.Int(int64(r.Intn(100))))
	case TResult:
		m.Found = r.Intn(2) == 0
		m.HoldID = uint64(r.Intn(1000))
		if m.Found {
			m.Tuple = tuple.T(tuple.String(randWord(r)), tuple.Int(r.Int63()))
		}
	case TAccept, TRelease, TCancel:
		m.HoldID = uint64(r.Intn(1000))
	case TOut:
		m.TTL = time.Duration(r.Intn(10000)) * time.Millisecond
		m.Tuple = tuple.T(tuple.String(randWord(r)))
	case TEval:
		m.Func = randWord(r)
		m.TTL = time.Duration(r.Intn(10000)) * time.Millisecond
		m.Tuple = tuple.T(tuple.Int(r.Int63()))
	case TAck:
		m.OK = r.Intn(2) == 0
		m.Err = randWord(r)
	case TRelay:
		m.Target = Addr(randWord(r))
		m.Payload = []byte(randWord(r))
	}
	return reflect.ValueOf(randMsg{M: m})
}

func randWord(r *rand.Rand) string {
	b := make([]byte, r.Intn(12))
	for i := range b {
		b[i] = byte('a' + r.Intn(26))
	}
	return string(b)
}

func TestPropRoundTrip(t *testing.T) {
	prop := func(rm randMsg) bool {
		data := Encode(rm.M)
		back, err := Decode(data)
		if err != nil {
			return false
		}
		// Compare via re-encoding: stable encodings imply field equality.
		data2 := Encode(back)
		if len(data) != len(data2) {
			return false
		}
		for i := range data {
			if data[i] != data2[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

// TestCapsTruncationFailsClosed covers the capability-field damage an
// old or cut-short sender could produce: a caps varint chopped mid-value
// must not decode at all, and chopping the whole field must not leave a
// frame that aliases a different capability statement.
func TestCapsTruncationFailsClosed(t *testing.T) {
	wide := Encode(&Message{Type: TAnnounce, ID: 13, From: "s", Caps: 1 << 40})
	if _, err := Decode(reframe(truncated(wide, 1))); !errors.Is(err, ErrFrame) {
		t.Fatalf("mid-varint caps truncation: got %v, want ErrFrame", err)
	}
	// Chopping the entire caps field off a degraded announce leaves a
	// valid (shorter) degraded announce with caps reverting to unknown.
	deg := Encode(&Message{Type: TAnnounce, ID: 13, From: "s", Degraded: true, Caps: CapsCurrent})
	m, err := Decode(reframe(truncated(deg, 1)))
	if err != nil {
		t.Fatalf("caps field chop: %v", err)
	}
	if !m.Degraded || m.Caps != 0 {
		t.Fatalf("caps field chop: got degraded=%v caps=%#x, want degraded with unknown caps", m.Degraded, m.Caps)
	}
	// On a healthy announce the same chop strands an explicit false
	// degraded marker, which is non-canonical and must be rejected.
	healthy := Encode(&Message{Type: TAnnounce, ID: 13, From: "s", Caps: CapsCurrent})
	if _, err := Decode(reframe(truncated(healthy, 1))); !errors.Is(err, ErrFrame) {
		t.Fatalf("stranded degraded filler: got %v, want ErrFrame", err)
	}
}

func FuzzDecode(f *testing.F) {
	f.Add(Encode(&Message{Type: TDiscover, ID: 1, From: "seed"}))
	f.Add(Encode(&Message{Type: TOp, ID: 2, From: "s", Op: OpIn, TTL: time.Second,
		Template: tuple.Tmpl(tuple.Any())}))
	// Frames exercising the optional trailing fields: a busy refusal, a
	// busy ack, and an op carrying a propagated budget tighter than its
	// TTL. These are exactly the frames a pre-Busy/Budget decoder never
	// saw, so the corpus pins both the extended and the truncated layout.
	f.Add(Encode(&Message{Type: TResult, ID: 3, From: "s", Found: false, Busy: true}))
	f.Add(Encode(&Message{Type: TAck, ID: 4, From: "s", OK: false, Busy: true}))
	f.Add(Encode(&Message{Type: TOp, ID: 5, From: "s", Op: OpRd, TTL: time.Second,
		Budget: 250 * time.Millisecond, Template: tuple.Tmpl(tuple.Any())}))
	// A degraded announce: the gray-failure self-report rides the same
	// optional-trailing-field contract on TAnnounce.
	f.Add(Encode(&Message{Type: TAnnounce, ID: 6, From: "s", Persistent: true, Degraded: true}))
	// Replication-protocol frames (DESIGN.md §13): a replicate/repair
	// write-through, an invalidation, a result carrying a replica
	// identity, and a failover take — the frames a pre-replication
	// decoder never saw, pinning both the extended and truncated layouts.
	f.Add(Encode(&Message{Type: TOut, ID: 7, From: "s", TTL: time.Minute,
		Tuple: tuple.T(tuple.String("tok"), tuple.Int(1)), ReplOrigin: "s", ReplSeq: 2}))
	f.Add(Encode(&Message{Type: TCancel, ID: 8, From: "s", ReplOrigin: "o", ReplSeq: 5}))
	f.Add(Encode(&Message{Type: TResult, ID: 9, From: "s", Found: true, HoldID: 4,
		Tuple: tuple.T(tuple.String("tok"), tuple.Int(1)), ReplOrigin: "o", ReplSeq: 5}))
	f.Add(Encode(&Message{Type: TOp, ID: 10, From: "s", Op: OpInp, TTL: time.Second,
		Template: tuple.Tmpl(tuple.Any()), Failover: true}))
	// Capability-bearing announces (DESIGN.md §14): the newest optional
	// trailing field, in both healthy and degraded form.
	f.Add(Encode(&Message{Type: TAnnounce, ID: 11, From: "s", Persistent: true, Caps: CapsCurrent}))
	f.Add(Encode(&Message{Type: TAnnounce, ID: 12, From: "s", Degraded: true, Caps: CapBudget | CapBusy}))
	// Truncated-capability frames with recomputed checksums: a caps
	// varint chopped mid-value and an explicit zero caps field. Both are
	// frames no encoder produces; the corpus pins the fail-closed paths.
	f.Add(reframe(truncated(Encode(&Message{Type: TAnnounce, ID: 13, From: "s", Caps: 1 << 40}), 1)))
	f.Add(reframe(append(truncated(Encode(&Message{Type: TAnnounce, ID: 14, From: "s", Caps: 1}), 1), 0)))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(data)
		if err != nil {
			return
		}
		// Valid frames must re-encode and re-decode.
		if _, err := Decode(Encode(m)); err != nil {
			t.Fatalf("re-decode: %v", err)
		}
	})
}
