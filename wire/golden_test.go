package wire

import (
	"bufio"
	"encoding/binary"
	"encoding/hex"
	"flag"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"tiamat/tuple"
)

var updateGolden = flag.Bool("golden.update", false, "rewrite wire/testdata/golden.txt from the current encoder")

// goldenCases enumerates every message type crossed with every legal
// combination of its optional trailing fields. The committed fixture
// pins the exact bytes each case encodes to: any drift — reordering a
// field, changing a disambiguation rule, encoding a zero that used to
// be omitted — breaks this test before it breaks a mixed-version
// cluster. The cases whose encoding requires no capability
// (FeaturesOf == 0) are precisely the frames sent toward baseline
// peers, so their fixtures double as the proof that capability gating
// leaves the pre-capability wire image untouched.
func goldenCases() []struct {
	name string
	msg  *Message
} {
	tp := tuple.T(tuple.String("req"), tuple.Int(7))
	tmpl := tuple.Tmpl(tuple.String("req"), tuple.FormalInt())
	return []struct {
		name string
		msg  *Message
	}{
		{"discover", &Message{Type: TDiscover, ID: 7, From: "n01"}},

		{"announce", &Message{Type: TAnnounce, ID: 7, From: "n01", Persistent: true}},
		{"announce+degraded", &Message{Type: TAnnounce, ID: 7, From: "n01", Degraded: true}},
		{"announce+caps", &Message{Type: TAnnounce, ID: 7, From: "n01", Caps: CapsCurrent}},
		{"announce+degraded+caps", &Message{Type: TAnnounce, ID: 7, From: "n01", Degraded: true, Caps: CapsCurrent}},

		{"op", &Message{Type: TOp, ID: 7, From: "n01", Op: OpIn, Hops: 2, TTL: 1500 * time.Millisecond, Template: tmpl}},
		{"op+budget", &Message{Type: TOp, ID: 7, From: "n01", Op: OpIn, TTL: 1500 * time.Millisecond, Budget: 250 * time.Millisecond, Template: tmpl}},
		{"op+failover", &Message{Type: TOp, ID: 7, From: "n01", Op: OpInp, TTL: 1500 * time.Millisecond, Failover: true, Template: tmpl}},
		{"op+budget+failover", &Message{Type: TOp, ID: 7, From: "n01", Op: OpInp, TTL: 1500 * time.Millisecond, Budget: 250 * time.Millisecond, Failover: true, Template: tmpl}},

		{"result-notfound", &Message{Type: TResult, ID: 7, From: "n01"}},
		{"result-found", &Message{Type: TResult, ID: 7, From: "n01", Found: true, HoldID: 9, Tuple: tp}},
		{"result+busy", &Message{Type: TResult, ID: 7, From: "n01", Busy: true}},
		{"result-found+busy", &Message{Type: TResult, ID: 7, From: "n01", Found: true, HoldID: 9, Tuple: tp, Busy: true}},
		{"result-found+repl", &Message{Type: TResult, ID: 7, From: "n01", Found: true, HoldID: 9, Tuple: tp, ReplOrigin: "n02", ReplSeq: 41}},
		{"result-found+busy+repl", &Message{Type: TResult, ID: 7, From: "n01", Found: true, HoldID: 9, Tuple: tp, Busy: true, ReplOrigin: "n02", ReplSeq: 41}},

		{"accept", &Message{Type: TAccept, ID: 7, From: "n01", HoldID: 9}},
		{"release", &Message{Type: TRelease, ID: 7, From: "n01", HoldID: 9}},

		{"cancel", &Message{Type: TCancel, ID: 7, From: "n01", HoldID: 9}},
		{"cancel+repl", &Message{Type: TCancel, ID: 7, From: "n01", ReplOrigin: "n02", ReplSeq: 41}},

		{"out", &Message{Type: TOut, ID: 7, From: "n01", TTL: time.Minute, Tuple: tp}},
		{"out+repl", &Message{Type: TOut, ID: 7, From: "n01", TTL: time.Minute, Tuple: tp, ReplOrigin: "n02", ReplSeq: 41}},

		{"eval", &Message{Type: TEval, ID: 7, From: "n01", Func: "mandel", TTL: time.Second, Tuple: tp}},

		{"ack-ok", &Message{Type: TAck, ID: 7, From: "n01", OK: true}},
		{"ack-err", &Message{Type: TAck, ID: 7, From: "n01", Err: "lease: refused"}},
		{"ack+busy", &Message{Type: TAck, ID: 7, From: "n01", Err: "busy: admission refused", Busy: true}},
		{"ack+ackids", &Message{Type: TAck, ID: 7, From: "n01", OK: true, AckIDs: []uint64{8, 9, 1 << 33}}},
		{"ack+busy+ackids", &Message{Type: TAck, ID: 7, From: "n01", OK: true, Busy: true, AckIDs: []uint64{8}}},

		{"relay", &Message{Type: TRelay, ID: 7, From: "n01", Target: "far", Payload: []byte{1, 2, 3}}},
		{"goodbye", &Message{Type: TGoodbye, ID: 7, From: "n01"}},
	}
}

const goldenPath = "testdata/golden.txt"

func readGolden(t *testing.T) map[string]string {
	t.Helper()
	f, err := os.Open(goldenPath)
	if err != nil {
		t.Fatalf("golden corpus missing (regenerate with -golden.update): %v", err)
	}
	defer f.Close()
	out := make(map[string]string)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, hx, ok := strings.Cut(line, "\t")
		if !ok {
			t.Fatalf("malformed golden line %q", line)
		}
		out[name] = hx
	}
	return out
}

// TestGoldenEncodeStable pins every encoding to its committed bytes.
func TestGoldenEncodeStable(t *testing.T) {
	cases := goldenCases()
	if *updateGolden {
		var sb strings.Builder
		sb.WriteString("# Byte-exact wire fixtures: one frame per message type × optional-field\n")
		sb.WriteString("# combination. Regenerate with: go test ./wire -run Golden -golden.update\n")
		sb.WriteString("# A diff in this file is a wire-compatibility break — old decoders in a\n")
		sb.WriteString("# mixed-version cluster see exactly these bytes.\n")
		for _, c := range cases {
			fmt.Fprintf(&sb, "%s\t%s\n", c.name, hex.EncodeToString(Encode(c.msg)))
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(sb.String()), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	golden := readGolden(t)
	seen := make(map[string]bool)
	for _, c := range cases {
		want, ok := golden[c.name]
		if !ok {
			t.Errorf("%s: no golden entry (regenerate with -golden.update)", c.name)
			continue
		}
		seen[c.name] = true
		if got := hex.EncodeToString(Encode(c.msg)); got != want {
			t.Errorf("%s: encoding drifted\n got %s\nwant %s", c.name, got, want)
		}
	}
	for name := range golden {
		if !seen[name] {
			t.Errorf("golden entry %q has no case — stale fixture", name)
		}
	}
}

// TestGoldenRoundTrip decodes every fixture and re-encodes it,
// requiring the identical bytes back — no field may be lost, misread,
// or re-serialised differently.
func TestGoldenRoundTrip(t *testing.T) {
	for _, c := range goldenCases() {
		data := Encode(c.msg)
		back, err := Decode(data)
		if err != nil {
			t.Fatalf("%s: decode: %v", c.name, err)
		}
		if got := Encode(back); hex.EncodeToString(got) != hex.EncodeToString(data) {
			t.Errorf("%s: round trip not byte-stable\n got %x\nwant %x", c.name, got, data)
		}
		if got, want := FeaturesOf(back), FeaturesOf(c.msg); got != want {
			t.Errorf("%s: FeaturesOf drifted across round trip: %x != %x", c.name, got, want)
		}
	}
}

// TestGoldenTruncationFailsClosed chops every fixture at every body
// length (with a recomputed, valid checksum, so only the truncation
// itself is under test). Each chop must either fail to decode or parse
// as a valid shorter frame that re-encodes to exactly the truncated
// bytes — the optional-field contract: an old decoder reading a short
// prefix of a newer frame either rejects it or sees a well-formed older
// revision, never a misparse.
func TestGoldenTruncationFailsClosed(t *testing.T) {
	for _, c := range goldenCases() {
		data := Encode(c.msg)
		body := data[:len(data)-4] // strip CRC
		for cut := len(body) - 1; cut >= 4; cut-- {
			trunc := binary.LittleEndian.AppendUint32(append([]byte(nil), body[:cut]...), crc32.ChecksumIEEE(body[:cut]))
			back, err := Decode(trunc)
			if err != nil {
				continue // fail-closed: rejected outright
			}
			if got := Encode(back); hex.EncodeToString(got) != hex.EncodeToString(trunc) {
				t.Errorf("%s cut@%d: truncated frame misparsed: decoded %+v re-encodes to %x, not %x",
					c.name, cut, back, got, trunc)
			}
		}
	}
}

// TestGoldenCapsZeroFailsClosed hand-builds an announce that explicitly
// encodes a zero capability set — a value the encoder never produces
// (absent means unknown). The decoder must reject it rather than let
// "explicitly no capabilities" and "capabilities unknown" alias.
func TestGoldenCapsZeroFailsClosed(t *testing.T) {
	b := []byte{magicA, magicB, version, byte(TAnnounce)}
	b = binary.AppendUvarint(b, 7)
	b = appendStr(b, "n01")
	b = appendBool(b, false) // persistent
	b = appendBool(b, false) // degraded (encoded because caps follows)
	b = binary.AppendUvarint(b, 0)
	b = binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(b))
	if _, err := Decode(b); err == nil {
		t.Fatal("announce with explicit zero caps decoded; must fail closed")
	}
}
