package wire

import (
	"bytes"
	"testing"
)

// The Degraded (TAnnounce) field is the gray-failure self-report: an
// optional trailing field like TOp's Budget and TResult's Busy, encoded
// only when true so healthy announces stay byte-identical to the
// previous wire revision.

func TestAnnounceDegradedRoundTrip(t *testing.T) {
	for _, m := range []*Message{
		{Type: TAnnounce, ID: 1, From: "a", Degraded: true},
		{Type: TAnnounce, ID: 2, From: "b", Persistent: true, Degraded: true},
	} {
		back := roundTrip(t, m)
		if back.Degraded != m.Degraded || back.Persistent != m.Persistent {
			t.Fatalf("degraded lost: %+v", back)
		}
	}
}

func TestAnnounceHealthyEncodesIdentically(t *testing.T) {
	m := &Message{Type: TAnnounce, ID: 3, From: "c", Persistent: true}
	want := Encode(m)
	m.Degraded = false
	if got := Encode(m); !bytes.Equal(got, want) {
		t.Fatal("false degraded changed the frame bytes")
	}
}

func TestAnnounceDegradedAbsentDecodesToZero(t *testing.T) {
	data := Encode(&Message{Type: TAnnounce, ID: 4, From: "d", Persistent: true})
	m, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if m.Degraded {
		t.Fatal("degraded = true from a field-free frame")
	}
}
