package wire

import (
	"encoding/binary"
	"hash/crc32"
	"testing"
	"time"

	"tiamat/tuple"
)

// replFrames is the set of replication-protocol frames (DESIGN.md §13):
// a replicate/repair write-through, an invalidation, a found result
// carrying the replica identity (with and without an explicit busy
// byte), and a failover take (with and without a budget).
func replFrames() []*Message {
	tp := tuple.T(tuple.String("tok"), tuple.Int(7))
	return []*Message{
		{Type: TOut, ID: 10, From: "origin", TTL: time.Minute, Tuple: tp,
			ReplOrigin: "origin", ReplSeq: 3},
		{Type: TCancel, ID: 11, From: "taker", ReplOrigin: "origin", ReplSeq: 3},
		{Type: TResult, ID: 12, From: "backup", Found: true, HoldID: 9, Tuple: tp,
			ReplOrigin: "origin", ReplSeq: 3},
		{Type: TResult, ID: 13, From: "backup", Found: true, HoldID: 9, Tuple: tp,
			Busy: false, ReplOrigin: "org-2", ReplSeq: 1},
		{Type: TOp, ID: 14, From: "taker", Op: OpInp, TTL: time.Second,
			Template: tuple.Tmpl(tuple.String("tok"), tuple.FormalInt()), Failover: true},
		{Type: TOp, ID: 15, From: "taker", Op: OpIn, TTL: time.Second,
			Budget: 250 * time.Millisecond,
			Template: tuple.Tmpl(tuple.String("tok"), tuple.FormalInt()), Failover: true},
	}
}

func TestRoundTripReplFrames(t *testing.T) {
	for _, m := range replFrames() {
		back := roundTrip(t, m)
		if back.ReplOrigin != m.ReplOrigin || back.ReplSeq != m.ReplSeq || back.Failover != m.Failover {
			t.Fatalf("%s: repl fields lost: got (%q,%d,%v) want (%q,%d,%v)",
				m.Type, back.ReplOrigin, back.ReplSeq, back.Failover,
				m.ReplOrigin, m.ReplSeq, m.Failover)
		}
		if back.Budget != m.Budget || back.Busy != m.Busy || back.HoldID != m.HoldID {
			t.Fatalf("%s: prior optional fields disturbed: %+v", m.Type, back)
		}
		if m.Tuple.Arity() > 0 && !back.Tuple.Equal(m.Tuple) {
			t.Fatalf("%s: tuple lost", m.Type)
		}
	}
}

// A zero ReplSeq is never encoded, so a frame carrying one was crafted or
// corrupted: fail closed instead of decoding it as "not replicated".
func TestDecodeRejectsZeroReplSeq(t *testing.T) {
	base := &Message{Type: TCancel, ID: 1, From: "a", HoldID: 0}
	body := Encode(base)
	body = body[:len(body)-4] // strip CRC
	body = appendStr(body, "origin")
	body = binary.AppendUvarint(body, 0) // seq 0: invalid on the wire
	body = binary.LittleEndian.AppendUint32(body, crc32.ChecksumIEEE(body))
	if _, err := Decode(body); err == nil {
		t.Fatal("zero repl seq accepted")
	}
}

// Truncating the trailing replication fields anywhere must either fail
// the decode or fall back to a frame with no replication state at all —
// never a misread identity. This pins the mixed-version contract: an old
// decoder (which stops reading where the base frame ends) sees extended
// frames only as trailing garbage, and a partial trailer cannot smuggle
// in a different replica identity.
func TestReplTrailingFieldsFailClosed(t *testing.T) {
	for _, m := range replFrames() {
		full := Encode(m)
		payload := full[:len(full)-4]
		// Base length: the same message with the extension cleared.
		bare := *m
		bare.ReplOrigin, bare.ReplSeq, bare.Failover = "", 0, false
		bare.Busy, bare.Budget = false, 0
		base := len(Encode(&bare)) - 4
		for cut := base; cut < len(payload); cut++ {
			frame := append([]byte(nil), payload[:cut]...)
			frame = binary.LittleEndian.AppendUint32(frame, crc32.ChecksumIEEE(frame))
			got, err := Decode(frame)
			if err != nil {
				continue // fail-closed: truncation rejected
			}
			// A successful decode must be the degraded single-holder
			// reading, never a partial replication trailer.
			if got.ReplSeq != 0 || got.ReplOrigin != "" || got.Failover {
				t.Fatalf("%s: truncation at %d/%d decoded repl state (%q,%d,%v)",
					m.Type, cut, len(payload), got.ReplOrigin, got.ReplSeq, got.Failover)
			}
		}
	}
}

// R=1 instances never set the extension fields, and the encoder only
// emits them when set — so the replication-capable codec emits
// byte-identical frames for unreplicated traffic.
func TestUnreplicatedFramesUnchanged(t *testing.T) {
	tp := tuple.T(tuple.String("k"), tuple.Int(1))
	for _, m := range []*Message{
		{Type: TOut, ID: 1, From: "a", TTL: time.Second, Tuple: tp},
		{Type: TCancel, ID: 2, From: "a", HoldID: 7},
		{Type: TResult, ID: 3, From: "a", Found: true, HoldID: 7, Tuple: tp},
		{Type: TOp, ID: 4, From: "a", Op: OpInp, TTL: time.Second,
			Template: tuple.Tmpl(tuple.Any())},
	} {
		withRepl := *m
		withRepl.ReplOrigin, withRepl.ReplSeq, withRepl.Failover = "", 0, false
		a, b := Encode(m), Encode(&withRepl)
		if string(a) != string(b) {
			t.Fatalf("%s: zero-valued repl fields changed the encoding", m.Type)
		}
		back := roundTrip(t, m)
		if back.ReplSeq != 0 || back.ReplOrigin != "" || back.Failover {
			t.Fatalf("%s: phantom repl state decoded: %+v", m.Type, back)
		}
	}
}
