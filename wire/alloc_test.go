package wire

import (
	"testing"

	"tiamat/tuple"
)

// allocMsg is a representative TResult frame (the take protocol's reply).
func allocMsg() *Message {
	return &Message{
		Type: TResult, ID: 7, From: "node-a:7703",
		Found: true, HoldID: 99,
		Tuple: tuple.T(tuple.String("req"), tuple.Int(42), tuple.Bytes(make([]byte, 256))),
	}
}

// TestAppendEncodeNoAllocs pins the encode hot path at zero allocations
// once the destination buffer is warm — the property the pooled
// transports rely on.
func TestAppendEncodeNoAllocs(t *testing.T) {
	m := allocMsg()
	dst := make([]byte, 0, 1024)
	allocs := testing.AllocsPerRun(100, func() {
		dst = AppendEncode(dst[:0], m)
	})
	if allocs != 0 {
		t.Fatalf("AppendEncode into warm buffer: %v allocs/op, want 0", allocs)
	}
}

// TestDecodeNoCopyFewerAllocs pins the no-copy decode path strictly below
// the copying path for frames with bytes payloads, and bounds it
// absolutely so a regression that reintroduces per-field copies fails.
func TestDecodeNoCopyFewerAllocs(t *testing.T) {
	data := Encode(allocMsg())
	copying := testing.AllocsPerRun(100, func() {
		if _, err := Decode(data); err != nil {
			t.Fatal(err)
		}
	})
	aliasing := testing.AllocsPerRun(100, func() {
		if _, err := DecodeNoCopy(data); err != nil {
			t.Fatal(err)
		}
	})
	if aliasing >= copying {
		t.Fatalf("DecodeNoCopy %v allocs/op, Decode %v: no-copy path must allocate less", aliasing, copying)
	}
	// Message + fields slice + from/tag strings leave a small fixed
	// overhead; 6 is loose enough to survive compiler changes while
	// catching a reintroduced per-bytes-field copy.
	if aliasing > 6 {
		t.Fatalf("DecodeNoCopy %v allocs/op, want <= 6", aliasing)
	}
}

// TestPooledRoundtripAllocs bounds the whole pooled encode+decode cycle,
// mirroring what a transport does per frame.
func TestPooledRoundtripAllocs(t *testing.T) {
	m := allocMsg()
	// Warm the pool.
	b := GetBuf()
	b.B = AppendEncode(b.B, m)
	b.Release()
	allocs := testing.AllocsPerRun(100, func() {
		buf := GetBuf()
		buf.B = AppendEncode(buf.B, m)
		if _, err := DecodeNoCopy(buf.B); err != nil {
			t.Fatal(err)
		}
		buf.Release()
	})
	if allocs > 8 {
		t.Fatalf("pooled roundtrip: %v allocs/op, want <= 8", allocs)
	}
}
