package wire

import (
	"bytes"
	"testing"
	"time"

	"tiamat/tuple"
)

// The Budget (TOp) and Busy (TResult) fields are optional trailing
// fields: they are only encoded when they carry information, so the
// common frames stay byte-identical to the previous wire revision and
// decodable by peers running the previous code.

func TestOpBudgetRoundTrip(t *testing.T) {
	m := &Message{Type: TOp, ID: 3, From: "c", Op: OpIn, TTL: 1500 * time.Millisecond,
		Budget:   250 * time.Millisecond,
		Template: tuple.Tmpl(tuple.String("req"), tuple.FormalInt())}
	back := roundTrip(t, m)
	if back.Budget != m.Budget || back.TTL != m.TTL {
		t.Fatalf("budget lost: got ttl=%v budget=%v", back.TTL, back.Budget)
	}
}

func TestResultBusyRoundTrip(t *testing.T) {
	for _, m := range []*Message{
		{Type: TResult, ID: 4, From: "d", Found: false, Busy: true},
		{Type: TResult, ID: 5, From: "d", Found: true, HoldID: 2, Busy: true,
			Tuple: tuple.T(tuple.String("x"))},
	} {
		back := roundTrip(t, m)
		if back.Busy != m.Busy || back.Found != m.Found {
			t.Fatalf("busy lost: %+v", back)
		}
	}
}

func TestAckBusyRoundTrip(t *testing.T) {
	m := &Message{Type: TAck, ID: 6, From: "e", OK: false, Err: "busy", Busy: true}
	back := roundTrip(t, m)
	if !back.Busy || back.OK || back.Err != "busy" {
		t.Fatalf("ack busy lost: %+v", back)
	}
}

// Frames without the optional fields must be byte-identical to frames
// that never knew about them: the absent case is the compatibility case.
func TestAbsentOptionalFieldsEncodeIdentically(t *testing.T) {
	op := &Message{Type: TOp, ID: 3, From: "c", Op: OpRd, TTL: time.Second,
		Template: tuple.Tmpl(tuple.FormalString())}
	want := Encode(op)
	op.Budget = 0
	if got := Encode(op); !bytes.Equal(got, want) {
		t.Fatal("zero budget changed the frame bytes")
	}
	res := &Message{Type: TResult, ID: 4, From: "d", Found: false}
	want = Encode(res)
	res.Busy = false
	if got := Encode(res); !bytes.Equal(got, want) {
		t.Fatal("false busy changed the frame bytes")
	}
	ack := &Message{Type: TAck, ID: 5, From: "e", OK: false, Err: "refused"}
	want = Encode(ack)
	ack.Busy = false
	if got := Encode(ack); !bytes.Equal(got, want) {
		t.Fatal("false busy changed the ack frame bytes")
	}
}

// A decoder that never learned the optional fields sees them as trailing
// bytes and rejects the frame — the documented mixed-version fallback is
// refusal, not misinterpretation. This test pins the other direction:
// the new decoder accepts old (field-free) frames and reports the zero
// value.
func TestOptionalFieldsAbsentDecodeToZero(t *testing.T) {
	op := Encode(&Message{Type: TOp, ID: 3, From: "c", Op: OpRd, TTL: time.Second,
		Template: tuple.Tmpl(tuple.FormalString())})
	m, err := Decode(op)
	if err != nil {
		t.Fatal(err)
	}
	if m.Budget != 0 {
		t.Fatalf("budget = %v, want 0 (assume TTL)", m.Budget)
	}
	res := Encode(&Message{Type: TResult, ID: 4, From: "d", Found: false})
	m, err = Decode(res)
	if err != nil {
		t.Fatal(err)
	}
	if m.Busy {
		t.Fatal("busy = true from a field-free frame")
	}
}
