// Repository-root benchmarks: one per reproduction experiment (DESIGN.md
// §4) plus micro-benchmarks of the core data structures. The experiment
// benchmarks run the Quick scale of the same harness code that
// cmd/tiamat-bench runs at Full scale; -v prints the resulting tables.
package tiamat_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"tiamat"
	"tiamat/clock"
	"tiamat/internal/harness"
	"tiamat/internal/store"
	"tiamat/lease"
	"tiamat/transport/memnet"
	"tiamat/tuple"
	"tiamat/wire"
)

// benchTable runs an experiment once per b.N and reports its wall time.
func benchTable(b *testing.B, run func(harness.Scale) (*harness.Table, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		table, err := run(harness.Quick)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 && testing.Verbose() {
			table.Fprint(benchWriter{b})
		}
	}
}

type benchWriter struct{ b *testing.B }

func (w benchWriter) Write(p []byte) (int, error) {
	w.b.Log(string(p))
	return len(p), nil
}

func BenchmarkE1Figure1(b *testing.B) {
	benchTable(b, func(harness.Scale) (*harness.Table, error) { return harness.E1Figure1() })
}
func BenchmarkE2ResponderList(b *testing.B)     { benchTable(b, harness.E2ResponderList) }
func BenchmarkE3LeaseReclaim(b *testing.B)      { benchTable(b, harness.E3LeaseReclaim) }
func BenchmarkE4WebProxyScaling(b *testing.B)   { benchTable(b, harness.E4WebProxy) }
func BenchmarkE5Fractal(b *testing.B)           { benchTable(b, harness.E5Fractal) }
func BenchmarkE6FederatedVsTiamat(b *testing.B) { benchTable(b, harness.E6FederatedVsTiamat) }
func BenchmarkE7ReplicaCost(b *testing.B)       { benchTable(b, harness.E7ReplicaCost) }
func BenchmarkE8FloodVsList(b *testing.B)       { benchTable(b, harness.E8FloodVsList) }
func BenchmarkE9Availability(b *testing.B)      { benchTable(b, harness.E9Availability) }
func BenchmarkE10Churn(b *testing.B)            { benchTable(b, harness.E10Churn) }
func BenchmarkT1LocalOps(b *testing.B)          { benchTable(b, harness.T1LocalOps) }
func BenchmarkT2LeaseNegotiation(b *testing.B)  { benchTable(b, harness.T2LeaseNegotiation) }
func BenchmarkX1Backbone(b *testing.B)          { benchTable(b, harness.X1Backbone) }
func BenchmarkX2AdaptiveDiscovery(b *testing.B) { benchTable(b, harness.X2AdaptiveDiscovery) }
func BenchmarkAB1ContactFanout(b *testing.B)    { benchTable(b, harness.AB1ContactFanout) }

// --- micro-benchmarks ----------------------------------------------------

func BenchmarkTupleMatch(b *testing.B) {
	t := tuple.T(tuple.String("req"), tuple.Int(42), tuple.Bool(true))
	p := tuple.Tmpl(tuple.String("req"), tuple.FormalInt(), tuple.Any())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !p.Matches(t) {
			b.Fatal("no match")
		}
	}
}

func BenchmarkTupleEncode(b *testing.B) {
	t := tuple.T(tuple.String("req"), tuple.Int(42), tuple.Bytes(make([]byte, 256)))
	buf := make([]byte, 0, 512)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = t.AppendBinary(buf[:0])
	}
	_ = buf
}

func BenchmarkTupleDecode(b *testing.B) {
	data := tuple.T(tuple.String("req"), tuple.Int(42), tuple.Bytes(make([]byte, 256))).AppendBinary(nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := tuple.DecodeTuple(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStoreOutInp(b *testing.B) {
	s := store.New()
	defer s.Close()
	t := tuple.T(tuple.String("k"), tuple.Int(1))
	p := tuple.Tmpl(tuple.String("k"), tuple.FormalInt())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Out(t, time.Time{}); err != nil {
			b.Fatal(err)
		}
		if _, ok := s.Inp(p); !ok {
			b.Fatal("miss")
		}
	}
}

func BenchmarkStoreRdpDenseBucket(b *testing.B) {
	s := store.New()
	defer s.Close()
	for i := 0; i < 10000; i++ {
		s.Out(tuple.T(tuple.String("k"), tuple.Int(int64(i))), time.Time{})
	}
	p := tuple.Tmpl(tuple.String("k"), tuple.FormalInt())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := s.Rdp(p); !ok {
			b.Fatal("miss")
		}
	}
}

func BenchmarkLeaseGrantCancel(b *testing.B) {
	m := lease.NewManager(lease.DefaultCapacity(), clock.Real{})
	defer m.Close()
	r := lease.Flexible(lease.Terms{Duration: time.Second, MaxRemotes: 4, MaxBytes: 64})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l, err := m.Grant(lease.OpRd, r)
		if err != nil {
			b.Fatal(err)
		}
		l.Cancel()
	}
}

func BenchmarkLocalOutInpThroughInstance(b *testing.B) {
	net := memnet.New()
	defer net.Close()
	ep, err := net.Attach("bench")
	if err != nil {
		b.Fatal(err)
	}
	inst, err := tiamat.New(tiamat.Config{Endpoint: ep})
	if err != nil {
		b.Fatal(err)
	}
	defer inst.Close()
	t := tuple.T(tuple.String("k"), tuple.Int(1))
	p := tuple.Tmpl(tuple.String("k"), tuple.FormalInt())
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := inst.Out(t, nil); err != nil {
			b.Fatal(err)
		}
		if _, ok, err := inst.Inp(ctx, p, nil); err != nil || !ok {
			b.Fatalf("inp: %v %v", ok, err)
		}
	}
}

func BenchmarkRemoteInpTwoNodes(b *testing.B) {
	net := memnet.New()
	defer net.Close()
	epA, _ := net.Attach("a")
	epB, _ := net.Attach("b")
	net.ConnectAll()
	a, err := tiamat.New(tiamat.Config{Endpoint: epA})
	if err != nil {
		b.Fatal(err)
	}
	defer a.Close()
	bb, err := tiamat.New(tiamat.Config{Endpoint: epB})
	if err != nil {
		b.Fatal(err)
	}
	defer bb.Close()
	t := tuple.T(tuple.String("k"), tuple.Int(1))
	p := tuple.Tmpl(tuple.String("k"), tuple.FormalInt())
	ctx := context.Background()
	req := lease.Flexible(lease.Terms{Duration: 10 * time.Second, MaxRemotes: 4})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := a.Out(t, nil); err != nil {
			b.Fatal(err)
		}
		// The remote take round-trips the full protocol: op, hold,
		// result, accept.
		for {
			_, ok, err := bb.Inp(ctx, p, req)
			if err != nil {
				b.Fatal(err)
			}
			if ok {
				break
			}
		}
	}
}

// BenchmarkRemoteInpTwoNodesReplicated is the R=2 twin of
// BenchmarkRemoteInpTwoNodes: every out write-through-replicates to the
// ring backup and every take runs the sibling-invalidation round, so
// the delta against the R=1 number is the steady-state cost of leased
// replication on the remote hot path.
func BenchmarkRemoteInpTwoNodesReplicated(b *testing.B) {
	net := memnet.New()
	defer net.Close()
	epA, _ := net.Attach("a")
	epB, _ := net.Attach("b")
	net.ConnectAll()
	a, err := tiamat.New(tiamat.Config{Endpoint: epA, Replicas: 2})
	if err != nil {
		b.Fatal(err)
	}
	defer a.Close()
	bb, err := tiamat.New(tiamat.Config{Endpoint: epB, Replicas: 2})
	if err != nil {
		b.Fatal(err)
	}
	defer bb.Close()
	t := tuple.T(tuple.String("k"), tuple.Int(1))
	p := tuple.Tmpl(tuple.String("k"), tuple.FormalInt())
	ctx := context.Background()
	req := lease.Flexible(lease.Terms{Duration: 10 * time.Second, MaxRemotes: 4})
	outReq := lease.Flexible(lease.Terms{Duration: 10 * time.Second, MaxBytes: 1 << 16, MaxRemotes: 4})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := a.Out(t, outReq); err != nil {
			b.Fatal(err)
		}
		for {
			_, ok, err := bb.Inp(ctx, p, req)
			if err != nil {
				b.Fatal(err)
			}
			if ok {
				break
			}
		}
	}
}

func BenchmarkSpacesDiscovery(b *testing.B) {
	net := memnet.New()
	defer net.Close()
	var insts []*tiamat.Instance
	for i := 0; i < 8; i++ {
		ep, _ := net.Attach(wire.Addr(fmt.Sprintf("n%d", i)))
		inst, err := tiamat.New(tiamat.Config{Endpoint: ep})
		if err != nil {
			b.Fatal(err)
		}
		insts = append(insts, inst)
	}
	defer func() {
		for _, i := range insts {
			i.Close()
		}
	}()
	net.ConnectAll()
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		infos, err := insts[0].Spaces(ctx)
		if err != nil || len(infos) != 8 {
			b.Fatalf("spaces: %d %v", len(infos), err)
		}
	}
}
