// Package tiamat is a Go implementation of Tiamat, the generative-
// communication (tuple space) middleware for pervasive, changing
// environments described in "Tiamat: Generative Communication in a
// Changing World" (McSorley & Evans, MIDDLEWARE 2003).
//
// # Model
//
// Every Tiamat instance owns a local tuple space and participates in an
// opportunistic logical tuple space: the union of its local space and the
// spaces of all instances currently visible on the network. There are no
// explicit connect/disconnect operations and no global consistency —
// instances may see different logical spaces, and visibility can change
// at any moment without affecting the semantics of ongoing operations.
//
// Every operation is leased: the application negotiates a budget (time,
// remote contacts, bytes) with the instance's lease manager before work
// begins. Expired out-leases make tuples reclaimable; expired blocking
// reads return ErrNoMatch.
//
// # Quickstart
//
//	net := memnet.New()                       // or netudp for real networks
//	epA, _ := net.Attach("a")
//	epB, _ := net.Attach("b")
//	net.ConnectAll()
//	a, _ := tiamat.New(tiamat.Config{Endpoint: epA})
//	b, _ := tiamat.New(tiamat.Config{Endpoint: epB})
//	defer a.Close()
//	defer b.Close()
//
//	_ = a.Out(tuple.T(tuple.String("greeting"), tuple.String("hello")), nil)
//	res, _, _ := b.Rdp(ctx, tuple.Tmpl(tuple.String("greeting"), tuple.FormalString()), nil)
//
// See the examples directory for complete applications (a web proxy
// coordination system and a fractal render farm, the two applications the
// paper ports onto Tiamat).
package tiamat

import (
	"tiamat/internal/core"
)

// Instance is one Tiamat node: lease manager, local tuple space, and
// communications manager (paper Figure 2). Create one with New.
type Instance = core.Instance

// Config configures an Instance; Endpoint is required.
type Config = core.Config

// Result is a tuple returned by a read/take along with the handle of the
// space it came from, usable with OutBack.
type Result = core.Result

// GovernorConfig tunes the overload governor on the serve path:
// admission quotas, queue depth, and the shed/shrink/revoke watermarks
// (DESIGN.md §9). The zero value uses the library defaults.
type GovernorConfig = core.GovernorConfig

// GovernorReport is a snapshot of the governor's lifetime counters,
// available via Instance.Governor.
type GovernorReport = core.GovernorReport

// GrayReport is a snapshot of the gray-failure counters — hedged
// contacts fired/won/suppressed and the size of the RTT digest feeding
// the adaptive hedge delay (DESIGN.md §11) — available via
// Instance.Gray. Instance.Degraded reports whether the node is
// currently advertising itself degraded (WAL fsync stalls or governor
// queue delay).
type GrayReport = core.GrayReport

// MobilityReport is a snapshot of the partition/mobility counters —
// join-event re-arms of in-flight blocking ops and orphaned remote
// wait/hold reconciliation (DESIGN.md §10) — available via
// Instance.Mobility.
type MobilityReport = core.MobilityReport

// CapsReport is a snapshot of the capability-negotiation machinery —
// the local advertised capability set, how many peer capability sets
// were learned, how many frames were stripped or withheld toward
// pre-capability peers, and how many cached responders still run a
// baseline build (DESIGN.md §14) — available via Instance.CapsSummary.
type CapsReport = core.CapsReport

// SpaceInfo describes a visible space (handle + persistence flag).
type SpaceInfo = core.SpaceInfo

// EvalFunc is a registered active-tuple computation.
type EvalFunc = core.EvalFunc

// RoutePolicy selects OutBack behaviour when the destination is away.
type RoutePolicy = core.RoutePolicy

// OutBack routing policies (paper §2.4).
const (
	RouteLocal   = core.RouteLocal
	RouteAbandon = core.RouteAbandon
	RouteRelay   = core.RouteRelay
)

// Errors surfaced by instance operations.
var (
	ErrNoMatch       = core.ErrNoMatch
	ErrClosed        = core.ErrClosed
	ErrUnknownEval   = core.ErrUnknownEval
	ErrRemoteRefused = core.ErrRemoteRefused
	ErrAbandoned     = core.ErrAbandoned
)

// SpaceInfoName is the first field of every space-info tuple (§2.4).
const SpaceInfoName = core.SpaceInfoName

// New creates and starts an instance.
func New(cfg Config) (*Instance, error) { return core.New(cfg) }
