// Package clock abstracts time so that every lease, timeout, and janitor in
// the system can run against either the wall clock or a deterministic
// virtual clock driven by tests and benchmarks.
package clock

import (
	"container/heap"
	"sync"
	"time"
)

// Clock is the time source used throughout Tiamat.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// After returns a channel that delivers the then-current time once d
	// has elapsed.
	After(d time.Duration) <-chan time.Time
	// AfterFunc schedules f to run after d and returns a stop function.
	// The stop function reports whether it prevented f from running.
	AfterFunc(d time.Duration, f func()) (stop func() bool)
	// NewTimer returns a resettable one-shot timer armed for d. Unlike
	// After, the timer (and its channel) can be re-armed with Reset, so a
	// retry loop allocates one timer for its whole lifetime instead of one
	// per arm.
	NewTimer(d time.Duration) Timer
	// Sleep blocks the calling goroutine for d.
	Sleep(d time.Duration)
}

// Timer is a resettable one-shot timer. It is intended for a single
// consumer goroutine: Reset handles the stop-and-drain dance internally,
// so callers may re-arm it at any point whether or not the previous
// arming fired.
type Timer interface {
	// C returns the delivery channel. It is the same channel across
	// Resets.
	C() <-chan time.Time
	// Reset re-arms the timer for d, discarding any undelivered fire
	// from a previous arming.
	Reset(d time.Duration)
	// Stop disarms the timer, reporting whether it prevented a pending
	// fire. A stale fire may still sit in C after Stop returns false;
	// Reset discards it.
	Stop() bool
}

// Real is the wall-clock implementation.
type Real struct{}

var _ Clock = Real{}

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// After implements Clock.
func (Real) After(d time.Duration) <-chan time.Time { return time.After(d) }

// AfterFunc implements Clock.
func (Real) AfterFunc(d time.Duration, f func()) func() bool {
	t := time.AfterFunc(d, f)
	return t.Stop
}

// NewTimer implements Clock.
func (Real) NewTimer(d time.Duration) Timer { return &realTimer{t: time.NewTimer(d)} }

// Sleep implements Clock.
func (Real) Sleep(d time.Duration) { time.Sleep(d) }

type realTimer struct{ t *time.Timer }

func (rt *realTimer) C() <-chan time.Time { return rt.t.C }

func (rt *realTimer) Stop() bool { return rt.t.Stop() }

func (rt *realTimer) Reset(d time.Duration) {
	if !rt.t.Stop() {
		// Already fired: discard the stale delivery if the consumer has
		// not taken it, so C carries only the new arming.
		select {
		case <-rt.t.C:
		default:
		}
	}
	rt.t.Reset(d)
}

// Virtual is a deterministic clock. Time advances only when Advance or
// AdvanceTo is called; all timers due at or before the new time fire, in
// deadline order, on the calling goroutine's watch (callbacks run
// synchronously inside Advance, channel timers are delivered without
// blocking).
type Virtual struct {
	mu     sync.Mutex
	now    time.Time
	timers timerHeap
	seq    uint64
}

var _ Clock = (*Virtual)(nil)

// NewVirtual returns a virtual clock positioned at start.
func NewVirtual(start time.Time) *Virtual {
	return &Virtual{now: start}
}

type vtimer struct {
	at      time.Time
	seq     uint64 // FIFO tiebreak among equal deadlines
	ch      chan time.Time
	f       func()
	stopped bool
	index   int
}

type timerHeap []*vtimer

func (h timerHeap) Len() int { return len(h) }
func (h timerHeap) Less(i, j int) bool {
	if h[i].at.Equal(h[j].at) {
		return h[i].seq < h[j].seq
	}
	return h[i].at.Before(h[j].at)
}
func (h timerHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index, h[j].index = i, j
}
func (h *timerHeap) Push(x any) {
	t := x.(*vtimer)
	t.index = len(*h)
	*h = append(*h, t)
}
func (h *timerHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return t
}

// Now implements Clock.
func (v *Virtual) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// After implements Clock.
func (v *Virtual) After(d time.Duration) <-chan time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	ch := make(chan time.Time, 1)
	if d <= 0 {
		ch <- v.now
		return ch
	}
	v.push(&vtimer{at: v.now.Add(d), ch: ch})
	return ch
}

// AfterFunc implements Clock.
func (v *Virtual) AfterFunc(d time.Duration, f func()) func() bool {
	v.mu.Lock()
	if d <= 0 {
		v.mu.Unlock()
		f()
		return func() bool { return false }
	}
	t := &vtimer{at: v.now.Add(d), f: f}
	v.push(t)
	v.mu.Unlock()
	return func() bool {
		v.mu.Lock()
		defer v.mu.Unlock()
		if t.stopped {
			return false
		}
		t.stopped = true
		if t.index >= 0 && t.index < len(v.timers) && v.timers[t.index] == t {
			heap.Remove(&v.timers, t.index)
		}
		return true
	}
}

// NewTimer implements Clock.
func (v *Virtual) NewTimer(d time.Duration) Timer {
	vt := &virtualTimer{v: v, ch: make(chan time.Time, 1)}
	vt.Reset(d)
	return vt
}

type virtualTimer struct {
	v  *Virtual
	ch chan time.Time
	t  *vtimer // currently armed heap entry, nil when disarmed
}

func (vt *virtualTimer) C() <-chan time.Time { return vt.ch }

func (vt *virtualTimer) Stop() bool {
	vt.v.mu.Lock()
	defer vt.v.mu.Unlock()
	return vt.stopLocked()
}

func (vt *virtualTimer) stopLocked() bool {
	t := vt.t
	vt.t = nil
	if t == nil || t.stopped {
		return false
	}
	t.stopped = true
	if t.index >= 0 && t.index < len(vt.v.timers) && vt.v.timers[t.index] == t {
		heap.Remove(&vt.v.timers, t.index)
	}
	return true
}

func (vt *virtualTimer) Reset(d time.Duration) {
	vt.v.mu.Lock()
	vt.stopLocked()
	// Discard a stale fire from a previous arming so the channel carries
	// only this one.
	select {
	case <-vt.ch:
	default:
	}
	if d <= 0 {
		vt.ch <- vt.v.now
		vt.v.mu.Unlock()
		return
	}
	nt := &vtimer{at: vt.v.now.Add(d), ch: vt.ch}
	vt.v.push(nt)
	vt.t = nt
	vt.v.mu.Unlock()
}

// Sleep blocks until the virtual clock is advanced past d by another
// goroutine. Tests that drive the clock from the same goroutine should use
// After/Advance instead.
func (v *Virtual) Sleep(d time.Duration) { <-v.After(d) }

func (v *Virtual) push(t *vtimer) {
	t.seq = v.seq
	v.seq++
	heap.Push(&v.timers, t)
}

// Advance moves the clock forward by d, firing all timers that become due.
func (v *Virtual) Advance(d time.Duration) {
	v.mu.Lock()
	target := v.now.Add(d)
	v.mu.Unlock()
	v.AdvanceTo(target)
}

// AdvanceTo moves the clock to target (no-op if target is in the past),
// firing due timers in deadline order. Callback timers run without the lock
// held so they may schedule further timers.
func (v *Virtual) AdvanceTo(target time.Time) {
	for {
		v.mu.Lock()
		if len(v.timers) == 0 || v.timers[0].at.After(target) {
			if target.After(v.now) {
				v.now = target
			}
			v.mu.Unlock()
			return
		}
		t := heap.Pop(&v.timers).(*vtimer)
		if t.stopped {
			v.mu.Unlock()
			continue
		}
		t.stopped = true
		if t.at.After(v.now) {
			v.now = t.at
		}
		now := v.now
		v.mu.Unlock()
		if t.ch != nil {
			t.ch <- now
		}
		if t.f != nil {
			t.f()
		}
	}
}

// Pending reports the number of timers that have not yet fired.
func (v *Virtual) Pending() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	n := 0
	for _, t := range v.timers {
		if !t.stopped {
			n++
		}
	}
	return n
}

// NextDeadline returns the earliest pending timer deadline and whether one
// exists. Experiment drivers use it to step virtual time efficiently.
func (v *Virtual) NextDeadline() (time.Time, bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if len(v.timers) == 0 {
		return time.Time{}, false
	}
	return v.timers[0].at, true
}
