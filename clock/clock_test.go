package clock

import (
	"sync/atomic"
	"testing"
	"time"
)

var epoch = time.Date(2003, 6, 1, 0, 0, 0, 0, time.UTC)

func TestVirtualNowAndAdvance(t *testing.T) {
	v := NewVirtual(epoch)
	if !v.Now().Equal(epoch) {
		t.Fatalf("Now = %v, want %v", v.Now(), epoch)
	}
	v.Advance(3 * time.Second)
	if got := v.Now(); !got.Equal(epoch.Add(3 * time.Second)) {
		t.Fatalf("after Advance, Now = %v", got)
	}
	// Advancing to the past is a no-op.
	v.AdvanceTo(epoch)
	if got := v.Now(); !got.Equal(epoch.Add(3 * time.Second)) {
		t.Fatalf("AdvanceTo past moved clock back: %v", got)
	}
}

func TestVirtualAfter(t *testing.T) {
	v := NewVirtual(epoch)
	ch := v.After(10 * time.Second)
	select {
	case <-ch:
		t.Fatal("timer fired before Advance")
	default:
	}
	v.Advance(9 * time.Second)
	select {
	case <-ch:
		t.Fatal("timer fired early")
	default:
	}
	v.Advance(time.Second)
	select {
	case at := <-ch:
		if !at.Equal(epoch.Add(10 * time.Second)) {
			t.Fatalf("fired at %v", at)
		}
	default:
		t.Fatal("timer did not fire at deadline")
	}
}

func TestVirtualAfterZeroFiresImmediately(t *testing.T) {
	v := NewVirtual(epoch)
	select {
	case <-v.After(0):
	default:
		t.Fatal("After(0) did not deliver immediately")
	}
}

func TestVirtualAfterFuncOrderAndStop(t *testing.T) {
	v := NewVirtual(epoch)
	var order []int
	v.AfterFunc(2*time.Second, func() { order = append(order, 2) })
	v.AfterFunc(1*time.Second, func() { order = append(order, 1) })
	stop := v.AfterFunc(3*time.Second, func() { order = append(order, 3) })
	if !stop() {
		t.Fatal("stop returned false for pending timer")
	}
	if stop() {
		t.Fatal("second stop returned true")
	}
	v.Advance(5 * time.Second)
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("order = %v, want [1 2]", order)
	}
}

func TestVirtualFIFOAtSameDeadline(t *testing.T) {
	v := NewVirtual(epoch)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		v.AfterFunc(time.Second, func() { order = append(order, i) })
	}
	v.Advance(time.Second)
	for i, got := range order {
		if got != i {
			t.Fatalf("order = %v, want FIFO", order)
		}
	}
}

func TestVirtualCallbackScheduling(t *testing.T) {
	// A callback that schedules another timer due within the same Advance
	// window must still fire during that Advance.
	v := NewVirtual(epoch)
	var fired atomic.Int32
	v.AfterFunc(time.Second, func() {
		v.AfterFunc(time.Second, func() { fired.Add(1) })
	})
	v.Advance(5 * time.Second)
	if fired.Load() != 1 {
		t.Fatalf("chained timer fired %d times, want 1", fired.Load())
	}
}

func TestVirtualPendingAndNextDeadline(t *testing.T) {
	v := NewVirtual(epoch)
	if _, ok := v.NextDeadline(); ok {
		t.Fatal("NextDeadline with no timers reported ok")
	}
	v.After(5 * time.Second)
	v.After(2 * time.Second)
	if v.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", v.Pending())
	}
	at, ok := v.NextDeadline()
	if !ok || !at.Equal(epoch.Add(2*time.Second)) {
		t.Fatalf("NextDeadline = %v %v", at, ok)
	}
}

func TestVirtualSleepUnblocksOnAdvance(t *testing.T) {
	v := NewVirtual(epoch)
	done := make(chan struct{})
	go func() {
		v.Sleep(time.Second)
		close(done)
	}()
	// Wait for the sleeper to register its timer.
	for v.Pending() == 0 {
		time.Sleep(time.Millisecond)
	}
	v.Advance(time.Second)
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Sleep did not unblock")
	}
}

func TestRealClockBasics(t *testing.T) {
	var c Clock = Real{}
	t0 := c.Now()
	if t0.IsZero() {
		t.Fatal("real Now is zero")
	}
	fired := make(chan struct{})
	stop := c.AfterFunc(time.Millisecond, func() { close(fired) })
	select {
	case <-fired:
	case <-time.After(time.Second):
		t.Fatal("real AfterFunc did not fire")
	}
	stop()
	select {
	case <-c.After(time.Millisecond):
	case <-time.After(time.Second):
		t.Fatal("real After did not fire")
	}
	c.Sleep(time.Millisecond)
}
